package server

import (
	"sort"
	"sync"
	"time"

	"parulel/internal/match"
	"parulel/internal/stats"
)

// collector aggregates engine cycle records and server counters across
// every session, live or evicted. Percentiles are computed over a bounded
// sliding window of the newest cycle records (metricsWindow); totals and
// histograms cover the server's whole lifetime.
type collector struct {
	mu sync.Mutex

	// Lifetime totals.
	cycles      uint64
	fired       uint64
	redacted    uint64
	maxConflict int
	phaseTotals [4]time.Duration // match, redact, fire, apply
	hists       [4]*stats.Hist

	// Sliding window for percentiles.
	window    stats.Run
	windowCap int

	// Per-rule match/fire activity, folded as deltas after each run. The
	// map is capped at maxRuleSeries names to bound /metrics cardinality;
	// activity on rules beyond the cap is counted in rulesDropped.
	rules        map[string]*match.RuleProfile
	rulesDropped uint64

	// Per-stage request latency (queue wait, WAL append, fsync,
	// replication ack, engine run, …), fed by the span store's OnRecord
	// hook. Stage names form a small fixed set, so the map stays bounded.
	stages map[string]*stageAgg

	// Run/session counters.
	runsStarted, runsCompleted, runTimeouts, runsCanceled, runErrors   uint64
	sessionsCreated, sessionsEvicted, sessionsExpired, sessionsDeleted uint64

	// Admission-control counters.
	runsRejected      uint64 // runs refused with 429 (run queue full)
	mutationsRejected uint64 // mutations refused with 429 (session queue full)

	// Async-job counters.
	jobsCreated, jobsDone, jobsCanceled, jobsInterrupted, jobsErrors uint64

	// Batch counters.
	batches  uint64 // batch requests served
	batchOps uint64 // ops applied across all batches

	// Stream/temporal counters.
	streamFrames   uint64 // NDJSON frames applied across all stream requests
	streamFacts    uint64 // facts asserted via stream frames
	streamRejected uint64 // stream requests refused with 429
	ticks          uint64 // temporal clock advances (batch tick ops + frames)
	expiredFacts   uint64 // facts retracted by TTL expiry

	// Durability counters; durEnabled gates the payload section.
	durEnabled         bool
	foundOnBoot        int
	walRecords         uint64
	walBytes           uint64
	fsyncs             uint64
	fsyncTotal         time.Duration
	fsyncHist          *stats.Hist
	checkpoints        uint64
	checkpointErrors   uint64
	checkpointTotal    time.Duration
	sessionsRehydrated uint64
	recoveryFailures   uint64
	walTruncations     uint64
	walTruncatedBytes  uint64
	groupCommits       uint64 // batched flushes issued under fsync=group
	groupedAppends     uint64 // appends those flushes made durable

	// Cluster counters; clusterNode gates the payload section.
	clusterNode     string
	proxied         uint64 // requests proxied to their owning node
	redirected      uint64 // requests answered with a 307 to the owner
	replStreams     uint64 // replication streams attached (incl. re-attaches)
	replRecords     uint64 // WAL records acknowledged by a replica
	replFailures    uint64 // replication sends/attaches that failed
	replUnprotected uint64 // mutations acked with no live replica target
	migrationsIn    uint64
	migrationsOut   uint64
	promotions      uint64 // replicas promoted to primary (failovers)
}

// metricsWindow is the default number of cycle records retained for
// percentile computation (~a few MB at most).
const metricsWindow = 65536

// maxRuleSeries caps the number of distinct rule names tracked in the
// per-rule profile aggregate (and hence the /metrics label cardinality).
const maxRuleSeries = 256

var phaseNames = [4]string{"match", "redact", "fire", "apply"}

// stageAgg is one serving-path stage's latency aggregate.
type stageAgg struct {
	total time.Duration
	hist  *stats.Hist
}

func newCollector() *collector {
	c := &collector{
		windowCap: metricsWindow,
		fsyncHist: stats.NewHist(),
		rules:     make(map[string]*match.RuleProfile),
		stages:    make(map[string]*stageAgg),
	}
	for i := range c.hists {
		c.hists[i] = stats.NewHist()
	}
	return c
}

// observe folds freshly produced cycle records into the aggregate.
func (c *collector) observe(cycles []stats.Cycle) {
	if len(cycles) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cyc := range cycles {
		c.cycles++
		c.fired += uint64(cyc.Fired)
		c.redacted += uint64(cyc.Redacted)
		if cyc.ConflictSize > c.maxConflict {
			c.maxConflict = cyc.ConflictSize
		}
		for i, d := range [4]time.Duration{cyc.Match, cyc.Redact, cyc.Fire, cyc.Apply} {
			c.phaseTotals[i] += d
			c.hists[i].Observe(d)
		}
	}
	c.window.Cycles = append(c.window.Cycles, cycles...)
	c.window.Truncate(c.windowCap)
}

// stageObserved folds one completed span's duration into its stage's
// latency aggregate. Wired to the span store's OnRecord hook.
func (c *collector) stageObserved(stage string, d time.Duration) {
	c.mu.Lock()
	agg := c.stages[stage]
	if agg == nil {
		agg = &stageAgg{hist: stats.NewHist()}
		c.stages[stage] = agg
	}
	agg.total += d
	agg.hist.Observe(d)
	c.mu.Unlock()
}

// observeRules folds per-rule activity deltas into the aggregate. The
// return value is true exactly once — when the series cap first drops a
// new rule name — so the caller can log one warning instead of silently
// truncating attribution.
func (c *collector) observeRules(deltas []match.RuleProfile) (firstDrop bool) {
	if len(deltas) == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	wasZero := c.rulesDropped == 0
	for _, d := range deltas {
		agg := c.rules[d.Rule]
		if agg == nil {
			if len(c.rules) >= maxRuleSeries {
				c.rulesDropped++
				continue
			}
			agg = &match.RuleProfile{Rule: d.Rule}
			c.rules[d.Rule] = agg
		}
		agg.MatchNS += d.MatchNS
		agg.Tokens += d.Tokens
		agg.Probes += d.Probes
		agg.Insts += d.Insts
		agg.Fires += d.Fires
	}
	return wasZero && c.rulesDropped > 0
}

// counter bumps (each takes the lock; contention is negligible next to a
// rule-engine run).
func (c *collector) runStarted()     { c.bump(&c.runsStarted) }
func (c *collector) runCompleted()   { c.bump(&c.runsCompleted) }
func (c *collector) runTimeout()     { c.bump(&c.runTimeouts) }
func (c *collector) runCanceled()    { c.bump(&c.runsCanceled) }
func (c *collector) runError()       { c.bump(&c.runErrors) }
func (c *collector) sessionCreated() { c.bump(&c.sessionsCreated) }
func (c *collector) sessionEvicted() { c.bump(&c.sessionsEvicted) }
func (c *collector) sessionExpired() { c.bump(&c.sessionsExpired) }
func (c *collector) sessionDeleted() { c.bump(&c.sessionsDeleted) }

func (c *collector) runRejected()      { c.bump(&c.runsRejected) }
func (c *collector) mutationRejected() { c.bump(&c.mutationsRejected) }
func (c *collector) jobCreated()       { c.bump(&c.jobsCreated) }

// jobFinished attributes a terminal job state to its counter.
func (c *collector) jobFinished(status string) {
	switch status {
	case jobDone:
		c.bump(&c.jobsDone)
	case jobCanceled:
		c.bump(&c.jobsCanceled)
	case jobInterrupted:
		c.bump(&c.jobsInterrupted)
	default:
		c.bump(&c.jobsErrors)
	}
}

// batchObserved records one served batch and how many ops it applied.
func (c *collector) batchObserved(ops int) {
	c.mu.Lock()
	c.batches++
	c.batchOps += uint64(ops)
	c.mu.Unlock()
}

// streamFrameObserved records one applied stream frame and its fact count.
func (c *collector) streamFrameObserved(facts int) {
	c.mu.Lock()
	c.streamFrames++
	c.streamFacts += uint64(facts)
	c.mu.Unlock()
}

func (c *collector) streamRejectedObserved() { c.bump(&c.streamRejected) }

// ticksObserved records temporal clock advances and the facts they expired.
func (c *collector) ticksObserved(n int64, expired int) {
	c.mu.Lock()
	c.ticks += uint64(n)
	c.expiredFacts += uint64(expired)
	c.mu.Unlock()
}

func (c *collector) bump(f *uint64) {
	c.mu.Lock()
	*f++
	c.mu.Unlock()
}

// Durability observations. walAppend and fsyncObserved are handed to
// wal.Options as callbacks; the rest are called by the store glue.
func (c *collector) enableDurability(foundOnBoot int) {
	c.mu.Lock()
	c.durEnabled = true
	c.foundOnBoot = foundOnBoot
	c.mu.Unlock()
}

func (c *collector) walAppend(n int) {
	c.mu.Lock()
	c.walRecords++
	c.walBytes += uint64(n)
	c.mu.Unlock()
}

func (c *collector) fsyncObserved(d time.Duration) {
	c.mu.Lock()
	c.fsyncs++
	c.fsyncTotal += d
	c.fsyncHist.Observe(d)
	c.mu.Unlock()
}

func (c *collector) groupCommitObserved(cohort int) {
	c.mu.Lock()
	c.groupCommits++
	c.groupedAppends += uint64(cohort)
	c.mu.Unlock()
}

func (c *collector) checkpointDone(d time.Duration, err error) {
	c.mu.Lock()
	if err != nil {
		c.checkpointErrors++
	} else {
		c.checkpoints++
		c.checkpointTotal += d
	}
	c.mu.Unlock()
}

func (c *collector) sessionRehydrated() { c.bump(&c.sessionsRehydrated) }
func (c *collector) recoveryFailed()    { c.bump(&c.recoveryFailures) }

// Cluster observations.
func (c *collector) enableCluster(node string) {
	c.mu.Lock()
	c.clusterNode = node
	c.mu.Unlock()
}

func (c *collector) clusterProxied()     { c.bump(&c.proxied) }
func (c *collector) clusterRedirected()  { c.bump(&c.redirected) }
func (c *collector) clusterReplStream()  { c.bump(&c.replStreams) }
func (c *collector) clusterReplRecord()  { c.bump(&c.replRecords) }
func (c *collector) clusterReplFailure() { c.bump(&c.replFailures) }
func (c *collector) clusterUnprotected() { c.bump(&c.replUnprotected) }
func (c *collector) clusterMigratedIn()  { c.bump(&c.migrationsIn) }
func (c *collector) clusterMigratedOut() { c.bump(&c.migrationsOut) }
func (c *collector) clusterPromotion()   { c.bump(&c.promotions) }

func (c *collector) walTruncated(n int64) {
	c.mu.Lock()
	c.walTruncations++
	c.walTruncatedBytes += uint64(n)
	c.mu.Unlock()
}

// phasePayload is one phase's slice of the /metrics document.
type phasePayload struct {
	TotalNS   int64    `json:"total_ns"`
	HistCount uint64   `json:"hist_count"`
	Hist      []uint64 `json:"hist"`
}

// durabilityPayload is the /metrics durability section, present only
// when the server runs with a data directory.
type durabilityPayload struct {
	WALRecords     uint64 `json:"wal_records"`
	WALBytes       uint64 `json:"wal_bytes"`
	Fsyncs         uint64 `json:"fsyncs"`
	FsyncTotalNS   int64  `json:"fsync_total_ns"`
	FsyncHistCount uint64 `json:"fsync_hist_count"`
	// FsyncHist buckets follow engine.hist_bounds_ns.
	FsyncHist         []uint64 `json:"fsync_hist"`
	Checkpoints       uint64   `json:"checkpoints"`
	CheckpointErrors  uint64   `json:"checkpoint_errors"`
	CheckpointTotalNS int64    `json:"checkpoint_total_ns"`
	SessionsOnDisk    int      `json:"sessions_on_disk"`
	FoundOnBoot       int      `json:"sessions_found_on_boot"`
	Rehydrated        uint64   `json:"sessions_rehydrated"`
	RecoveryFailures  uint64   `json:"recovery_failures"`
	WALTruncations    uint64   `json:"wal_tail_truncations"`
	WALTruncatedBytes uint64   `json:"wal_tail_truncated_bytes"`
	GroupCommits      uint64   `json:"group_commits"`
	GroupedAppends    uint64   `json:"grouped_appends"`
}

// clusterPayload is the /metrics cluster section, present only when the
// node runs in cluster mode.
type clusterPayload struct {
	Node            string `json:"node"`
	MembersTotal    int    `json:"members_total"`
	MembersUp       int    `json:"members_up"`
	Proxied         uint64 `json:"proxied_requests"`
	Redirected      uint64 `json:"redirected_requests"`
	ReplStreams     uint64 `json:"repl_streams_opened"`
	ReplRecords     uint64 `json:"repl_records_sent"`
	ReplFailures    uint64 `json:"repl_send_failures"`
	ReplUnprotected uint64 `json:"repl_unprotected_mutations"`
	ReplicaSessions int    `json:"replica_sessions"`
	MigrationsIn    uint64 `json:"migrations_in"`
	MigrationsOut   uint64 `json:"migrations_out"`
	Promotions      uint64 `json:"promotions"`
	RouteOverrides  int    `json:"route_overrides"`
}

// clusterSample carries the point-in-time cluster gauges the caller reads
// under the cluster state's own locks.
type clusterSample struct {
	membersTotal, membersUp, replicaSessions, routeOverrides int
}

// metricsPayload is the /metrics response body.
type metricsPayload struct {
	UptimeMS int64 `json:"uptime_ms"`
	// EvalMode names the expression backend every session engine runs
	// with ("bytecode" or "interp").
	EvalMode string `json:"eval_mode"`
	Sessions struct {
		Live      int    `json:"live"`
		Created   uint64 `json:"created"`
		Evicted   uint64 `json:"evicted"`
		Expired   uint64 `json:"expired"`
		Deleted   uint64 `json:"deleted"`
		Recovered uint64 `json:"recovered"`
	} `json:"sessions"`
	Runs struct {
		Started   uint64 `json:"started"`
		Completed uint64 `json:"completed"`
		Timeouts  uint64 `json:"timeouts"`
		Canceled  uint64 `json:"canceled"`
		Errors    uint64 `json:"errors"`
		Active    int    `json:"active"`
	} `json:"runs"`
	// Admission reports the backpressure layer: current run-queue
	// occupancy and the fast-fail counters.
	Admission struct {
		RunQueueLen       int    `json:"run_queue_len"`
		RunsInflight      int    `json:"runs_inflight"`
		RunsRejected      uint64 `json:"runs_rejected"`
		MutationsRejected uint64 `json:"mutations_rejected"`
	} `json:"admission"`
	Jobs struct {
		Created     uint64 `json:"created"`
		Done        uint64 `json:"done"`
		Canceled    uint64 `json:"canceled"`
		Interrupted uint64 `json:"interrupted"`
		Errors      uint64 `json:"errors"`
		Active      int    `json:"active"`
	} `json:"jobs"`
	Batches struct {
		Batches uint64 `json:"batches"`
		Ops     uint64 `json:"ops"`
	} `json:"batches"`
	// Stream reports the continuous-ingest pipeline and the temporal
	// clock: frames and facts absorbed, 429-rejected stream requests,
	// clock advances and TTL-expired facts.
	Stream struct {
		Frames   uint64 `json:"frames"`
		Facts    uint64 `json:"facts"`
		Rejected uint64 `json:"rejected"`
		Ticks    uint64 `json:"ticks"`
		Expired  uint64 `json:"expired"`
	} `json:"stream"`
	Engine struct {
		Cycles          uint64                  `json:"cycles"`
		Fired           uint64                  `json:"fired"`
		Redacted        uint64                  `json:"redacted"`
		MaxConflictSize int                     `json:"max_conflict_size"`
		HistBoundsNS    []int64                 `json:"hist_bounds_ns"`
		Phases          map[string]phasePayload `json:"phases"`
		// Window holds percentiles over the newest cycle records.
		Window stats.Summary `json:"window"`
		// Rules attributes match and fire activity per rule, ordered by
		// match time (then fires, then name). RulesDropped counts folds
		// lost to the series cap (the engine.rules.dropped_series counter).
		Rules        []match.RuleProfile `json:"rules"`
		RulesDropped uint64              `json:"rules_dropped_series,omitempty"`
	} `json:"engine"`
	// Stages holds per-stage request latency histograms (ingress, queue
	// wait, WAL append, fsync, replication ack, engine run, …) fed by the
	// distributed-tracing span store. Buckets follow engine.hist_bounds_ns.
	Stages     map[string]phasePayload `json:"stages,omitempty"`
	Durability *durabilityPayload      `json:"durability,omitempty"`
	Cluster    *clusterPayload         `json:"cluster,omitempty"`
}

// snapshot renders the aggregate. live, active, onDisk, queued, inflight,
// jobsActive and cl are sampled by the caller under the relevant mutexes;
// cl is nil outside cluster mode.
func (c *collector) snapshot(uptime time.Duration, live, active, onDisk, queued, inflight, jobsActive int, cl *clusterSample) metricsPayload {
	c.mu.Lock()
	defer c.mu.Unlock()
	var p metricsPayload
	p.UptimeMS = uptime.Milliseconds()
	p.Sessions.Live = live
	p.Sessions.Created = c.sessionsCreated
	p.Sessions.Evicted = c.sessionsEvicted
	p.Sessions.Expired = c.sessionsExpired
	p.Sessions.Deleted = c.sessionsDeleted
	p.Sessions.Recovered = c.sessionsRehydrated
	p.Runs.Started = c.runsStarted
	p.Runs.Completed = c.runsCompleted
	p.Runs.Timeouts = c.runTimeouts
	p.Runs.Canceled = c.runsCanceled
	p.Runs.Errors = c.runErrors
	p.Runs.Active = active
	p.Admission.RunQueueLen = queued
	p.Admission.RunsInflight = inflight
	p.Admission.RunsRejected = c.runsRejected
	p.Admission.MutationsRejected = c.mutationsRejected
	p.Jobs.Created = c.jobsCreated
	p.Jobs.Done = c.jobsDone
	p.Jobs.Canceled = c.jobsCanceled
	p.Jobs.Interrupted = c.jobsInterrupted
	p.Jobs.Errors = c.jobsErrors
	p.Jobs.Active = jobsActive
	p.Batches.Batches = c.batches
	p.Batches.Ops = c.batchOps
	p.Stream.Frames = c.streamFrames
	p.Stream.Facts = c.streamFacts
	p.Stream.Rejected = c.streamRejected
	p.Stream.Ticks = c.ticks
	p.Stream.Expired = c.expiredFacts
	p.Engine.Cycles = c.cycles
	p.Engine.Fired = c.fired
	p.Engine.Redacted = c.redacted
	p.Engine.MaxConflictSize = c.maxConflict
	p.Engine.HistBoundsNS = make([]int64, len(stats.HistBounds))
	for i, b := range stats.HistBounds {
		p.Engine.HistBoundsNS[i] = b.Nanoseconds()
	}
	p.Engine.Phases = make(map[string]phasePayload, 4)
	for i, name := range phaseNames {
		p.Engine.Phases[name] = phasePayload{
			TotalNS:   c.phaseTotals[i].Nanoseconds(),
			HistCount: c.hists[i].Total(),
			Hist:      append([]uint64(nil), c.hists[i].Counts...),
		}
	}
	p.Engine.Window = c.window.Summarize()
	p.Engine.Rules = make([]match.RuleProfile, 0, len(c.rules))
	for _, agg := range c.rules {
		p.Engine.Rules = append(p.Engine.Rules, *agg)
	}
	sort.Slice(p.Engine.Rules, func(i, j int) bool {
		a, b := p.Engine.Rules[i], p.Engine.Rules[j]
		if a.MatchNS != b.MatchNS {
			return a.MatchNS > b.MatchNS
		}
		if a.Fires != b.Fires {
			return a.Fires > b.Fires
		}
		return a.Rule < b.Rule
	})
	p.Engine.RulesDropped = c.rulesDropped
	if len(c.stages) > 0 {
		p.Stages = make(map[string]phasePayload, len(c.stages))
		for name, agg := range c.stages {
			p.Stages[name] = phasePayload{
				TotalNS:   agg.total.Nanoseconds(),
				HistCount: agg.hist.Total(),
				Hist:      append([]uint64(nil), agg.hist.Counts...),
			}
		}
	}
	if c.durEnabled {
		p.Durability = &durabilityPayload{
			WALRecords:        c.walRecords,
			WALBytes:          c.walBytes,
			Fsyncs:            c.fsyncs,
			FsyncTotalNS:      c.fsyncTotal.Nanoseconds(),
			FsyncHistCount:    c.fsyncHist.Total(),
			FsyncHist:         append([]uint64(nil), c.fsyncHist.Counts...),
			Checkpoints:       c.checkpoints,
			CheckpointErrors:  c.checkpointErrors,
			CheckpointTotalNS: c.checkpointTotal.Nanoseconds(),
			SessionsOnDisk:    onDisk,
			FoundOnBoot:       c.foundOnBoot,
			Rehydrated:        c.sessionsRehydrated,
			RecoveryFailures:  c.recoveryFailures,
			WALTruncations:    c.walTruncations,
			WALTruncatedBytes: c.walTruncatedBytes,
			GroupCommits:      c.groupCommits,
			GroupedAppends:    c.groupedAppends,
		}
	}
	if c.clusterNode != "" && cl != nil {
		p.Cluster = &clusterPayload{
			Node:            c.clusterNode,
			MembersTotal:    cl.membersTotal,
			MembersUp:       cl.membersUp,
			Proxied:         c.proxied,
			Redirected:      c.redirected,
			ReplStreams:     c.replStreams,
			ReplRecords:     c.replRecords,
			ReplFailures:    c.replFailures,
			ReplUnprotected: c.replUnprotected,
			ReplicaSessions: cl.replicaSessions,
			MigrationsIn:    c.migrationsIn,
			MigrationsOut:   c.migrationsOut,
			Promotions:      c.promotions,
			RouteOverrides:  cl.routeOverrides,
		}
	}
	return p
}
