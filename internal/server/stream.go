package server

// POST /sessions/{id}/stream is the continuous-ingest endpoint: the
// request body is NDJSON, one frame per line, and each frame is applied
// as one atomic mini-batch — facts asserted (with optional TTL
// overrides), the temporal clock ticked, and optionally the engine run
// to quiescence — then persisted as a single wal.OpBatch frame. The
// response is NDJSON too: one result line per applied frame, flushed
// eagerly so a client can pace itself against the per-frame wm_size.
//
// Backpressure reuses the mutation admission gate: when the session's
// queue is full the whole request fast-fails with 429 + Retry-After, so
// a stream client ships bounded requests and retries, exactly like the
// batch path. Once frames start flowing the response status is already
// committed; frame-level failures surface as an in-band "error" line
// that terminates the stream (the applied prefix stands and is logged).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"parulel/internal/wal"
)

// streamFrame is one NDJSON request line. Ticks is the number of clock
// advances after the frame's facts land: absent means 1 (the common
// case — a frame is a unit of stream time), 0 suppresses the tick.
type streamFrame struct {
	Facts     []factPayload `json:"facts,omitempty"`
	Ticks     *int64        `json:"ticks,omitempty"`
	Run       bool          `json:"run,omitempty"`
	TimeoutMS int64         `json:"timeout_ms,omitempty"`
}

// streamFrameResult is one NDJSON response line. Frame counts from 1;
// an Error line is terminal and may carry frame 0 when the very first
// line failed to parse.
type streamFrameResult struct {
	Frame    int          `json:"frame"`
	Asserted int          `json:"asserted,omitempty"`
	Tick     int64        `json:"tick,omitempty"`
	Expired  int          `json:"expired,omitempty"`
	Run      *runResponse `json:"run,omitempty"`
	WMSize   int          `json:"wm_size"`
	Error    string       `json:"error,omitempty"`
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// A stream may run the engine, so the whole request registers as
	// active work: shutdown waits for it, a draining server refuses it.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.active++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.active--
		if s.draining && s.active == 0 {
			close(s.idle)
		}
		s.mu.Unlock()
	}()

	s.withSessionGate(w, r, s.metrics.streamRejectedObserved, func(sess *session) {
		schema := sess.eng.Memory().Schema()
		w.Header().Set("Content-Type", "application/x-ndjson")
		// The exchange is full-duplex: result lines go out while request
		// frames are still arriving. Without this, the HTTP/1 server
		// drains the whole request body before releasing the response
		// header, deadlocking against a client that paces its frames on
		// our results.
		rc := http.NewResponseController(w)
		_ = rc.EnableFullDuplex()
		enc := json.NewEncoder(w)
		dec := json.NewDecoder(r.Body)
		frame := 0
		var frameSp *reqSpan
		emit := func(res streamFrameResult) {
			// Every frame outcome — success or in-band error — emits
			// exactly one line, so the frame span ends here (idempotent,
			// nil before the first frame decodes).
			frameSp.End()
			res.Frame = frame
			res.WMSize = sess.eng.Memory().Len()
			_ = enc.Encode(res)
			_ = rc.Flush()
		}
		fail := func(format string, args ...any) {
			emit(streamFrameResult{Error: fmt.Sprintf(format, args...)})
		}

		for {
			var f streamFrame
			if err := dec.Decode(&f); err != nil {
				if errors.Is(err, io.EOF) {
					return
				}
				fail("bad frame: %v", err)
				return
			}
			frame++
			// One span per applied frame (decode wait excluded — idle time
			// between frames is the client's, not ours).
			frameSp = s.startSpan(r.Context(), stageStreamFrame)
			frameSp.SetAttr("frame", strconv.Itoa(frame))

			// Structural validation before anything is applied, mirroring
			// the batch handler's two-phase contract per frame.
			ok := true
			for j, fp := range f.Facts {
				tmpl, found := schema.Lookup(fp.Template)
				if !found {
					fail("fact %d: unknown template %q", j, fp.Template)
					ok = false
					break
				}
				for attr := range fp.Fields {
					if _, found := tmpl.AttrIndex(attr); !found {
						fail("fact %d: template %s has no attribute %q", j, fp.Template, attr)
						ok = false
						break
					}
				}
				if ok && fp.TTL < 0 {
					fail("fact %d: ttl must be non-negative", j)
					ok = false
				}
				if !ok {
					break
				}
			}
			if !ok {
				return
			}
			if f.Ticks != nil && *f.Ticks < 0 {
				fail("ticks must be non-negative")
				return
			}

			var recs []wal.Record
			sink := func(rec *wal.Record) bool {
				recs = append(recs, *rec)
				return true
			}

			inserted := make([]wal.Fact, 0, len(f.Facts))
			for j, fp := range f.Facts {
				fields := toFields(fp.Fields)
				el, err := sess.eng.Insert(fp.Template, fields)
				if err != nil {
					if len(inserted) > 0 {
						sink(&wal.Record{Op: wal.OpAssert, Facts: inserted})
						s.persist(r.Context(), sess, &wal.Record{Op: wal.OpBatch, Ops: recs})
					}
					fail("fact %d: %v", j, err)
					return
				}
				if fp.TTL > 0 {
					sess.clock.SetTTL(el, fp.TTL)
				}
				inserted = append(inserted, wal.Fact{Template: fp.Template, Fields: wal.EncodeFields(fields), TTL: fp.TTL})
			}
			if len(inserted) > 0 {
				sink(&wal.Record{Op: wal.OpAssert, Facts: inserted})
			}

			ticks := int64(1)
			if f.Ticks != nil {
				ticks = *f.Ticks
			}
			res := streamFrameResult{Asserted: len(inserted), Tick: sess.clock.Now()}
			tick0 := time.Now()
			for k := int64(0); k < ticks; k++ {
				t := sess.clock.Tick()
				res.Tick = t.Now
				res.Expired += t.Expired
				sink(&wal.Record{Op: wal.OpTick, Tick: t.Now, Count: t.Expired})
			}
			if ticks > 0 {
				s.recordSpan(r.Context(), frameSp.ID(), stageTick, time.Since(tick0))
			}

			if f.Run {
				timeout := s.clampTimeout(f.TimeoutMS)
				ctx, cancel := context.WithTimeout(r.Context(), timeout)
				ticket := s.runQueue.admitForce(sess.id)
				s.metrics.runStarted()
				out := s.driveRun(ctx, sess, ticket, sink)
				ticket.done()
				cancel()
				s.countRunOutcome(out)
				resp := out.resp
				res.Run = &resp
				if out.err != nil {
					// The frame's mutations and committed cycles stand; log
					// them, report the error, end the stream.
					if len(recs) > 0 {
						s.persist(r.Context(), sess, &wal.Record{Op: wal.OpBatch, Ops: recs})
					}
					fail("run: %v", out.err)
					return
				}
			}

			if len(recs) > 0 && !s.persist(r.Context(), sess, &wal.Record{Op: wal.OpBatch, Ops: recs}) {
				fail("frame applied in memory but not durably logged")
				return
			}
			s.metrics.streamFrameObserved(len(inserted))
			s.metrics.ticksObserved(ticks, res.Expired)
			emit(res)
		}
	})
}
