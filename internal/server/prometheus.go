package server

// Prometheus text exposition (format version 0.0.4) for /metrics, written
// by hand against the rendered metricsPayload so the JSON and Prometheus
// views can never disagree. Conventions: counters end in _total, times
// are seconds (floats), histograms follow the cumulative-bucket contract
// with an explicit +Inf bucket plus _sum and _count series.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// promWriter accumulates exposition lines; errors are checked once at the
// end by the caller via the underlying http.ResponseWriter semantics.
type promWriter struct {
	w io.Writer
}

func (p promWriter) header(name, help, typ string) {
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p promWriter) value(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	// 'g' keeps integers integral and never emits NaN/Inf for the finite
	// inputs the collector produces.
	fmt.Fprintf(p.w, "%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

func (p promWriter) counter(name, help string, v float64) {
	p.header(name, help, "counter")
	p.value(name, "", v)
}
func (p promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.value(name, "", v)
}

// histogram renders one cumulative-bucket histogram. counts has one entry
// per bound plus the overflow bucket; sumSeconds is the total observed time.
func (p promWriter) histogram(name, labels string, boundsNS []int64, counts []uint64, sumSeconds float64, total uint64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := uint64(0)
	for i, b := range boundsNS {
		if i < len(counts) {
			cum += counts[i]
		}
		le := strconv.FormatFloat(float64(b)/1e9, 'g', -1, 64)
		p.value(name+"_bucket", labels+sep+`le="`+le+`"`, float64(cum))
	}
	p.value(name+"_bucket", labels+sep+`le="+Inf"`, float64(total))
	p.value(name+"_sum", labels, sumSeconds)
	p.value(name+"_count", labels, float64(total))
}

// writePrometheus renders the metrics snapshot in exposition format.
func writePrometheus(w io.Writer, m metricsPayload) {
	p := promWriter{w}
	boundsNS := m.Engine.HistBoundsNS

	p.gauge("parulel_uptime_seconds", "Time since the server started.", float64(m.UptimeMS)/1e3)

	p.header("parulel_eval_mode", "Expression backend in use (constant 1, mode in the label).", "gauge")
	p.value("parulel_eval_mode", `mode="`+promEscape(m.EvalMode)+`"`, 1)

	p.gauge("parulel_sessions_live", "Sessions currently resident in the pool.", float64(m.Sessions.Live))
	p.counter("parulel_sessions_created_total", "Sessions ever created.", float64(m.Sessions.Created))
	p.counter("parulel_sessions_evicted_total", "Sessions evicted by LRU pressure.", float64(m.Sessions.Evicted))
	p.counter("parulel_sessions_expired_total", "Sessions expired by the idle TTL.", float64(m.Sessions.Expired))
	p.counter("parulel_sessions_deleted_total", "Sessions deleted by clients.", float64(m.Sessions.Deleted))
	p.counter("parulel_sessions_recovered_total", "Sessions rehydrated from disk.", float64(m.Sessions.Recovered))

	p.gauge("parulel_runs_active", "Engine runs currently executing or queued.", float64(m.Runs.Active))
	p.counter("parulel_runs_started_total", "Engine runs started.", float64(m.Runs.Started))
	p.counter("parulel_runs_completed_total", "Engine runs completed to quiescence or halt.", float64(m.Runs.Completed))
	p.counter("parulel_runs_timeout_total", "Engine runs that hit their deadline.", float64(m.Runs.Timeouts))
	p.counter("parulel_runs_canceled_total", "Engine runs canceled by the client.", float64(m.Runs.Canceled))
	p.counter("parulel_runs_error_total", "Engine runs that failed.", float64(m.Runs.Errors))

	p.gauge("parulel_run_queue_len", "Runs currently waiting for an engine slot.", float64(m.Admission.RunQueueLen))
	p.gauge("parulel_runs_inflight", "Admitted runs (executing or queued).", float64(m.Admission.RunsInflight))
	p.counter("parulel_runs_rejected_total", "Runs fast-failed with 429 by the admission cap.", float64(m.Admission.RunsRejected))
	p.counter("parulel_mutations_rejected_total", "Mutations fast-failed with 429 by a full session queue.", float64(m.Admission.MutationsRejected))

	p.gauge("parulel_jobs_active", "Async jobs currently queued or running.", float64(m.Jobs.Active))
	p.counter("parulel_jobs_created_total", "Async jobs ever created.", float64(m.Jobs.Created))
	p.counter("parulel_jobs_done_total", "Async jobs finished successfully (including deadline expiries).", float64(m.Jobs.Done))
	p.counter("parulel_jobs_canceled_total", "Async jobs canceled by clients.", float64(m.Jobs.Canceled))
	p.counter("parulel_jobs_interrupted_total", "Async jobs interrupted by shutdown or crash.", float64(m.Jobs.Interrupted))
	p.counter("parulel_jobs_error_total", "Async jobs that failed.", float64(m.Jobs.Errors))

	p.counter("parulel_batches_total", "Batch requests served.", float64(m.Batches.Batches))
	p.counter("parulel_batch_ops_total", "Batch operations applied.", float64(m.Batches.Ops))

	p.counter("parulel_stream_frames_total", "NDJSON stream frames applied.", float64(m.Stream.Frames))
	p.counter("parulel_stream_facts_total", "Facts asserted via stream frames.", float64(m.Stream.Facts))
	p.counter("parulel_stream_rejected_total", "Stream requests fast-failed with 429.", float64(m.Stream.Rejected))
	p.counter("parulel_temporal_ticks_total", "Temporal clock advances.", float64(m.Stream.Ticks))
	p.counter("parulel_temporal_expired_total", "Facts retracted by TTL expiry.", float64(m.Stream.Expired))

	p.counter("parulel_engine_cycles_total", "Committed engine cycles across all sessions.", float64(m.Engine.Cycles))
	p.counter("parulel_engine_fired_total", "Instantiations fired across all sessions.", float64(m.Engine.Fired))
	p.counter("parulel_engine_redacted_total", "Instantiations redacted by meta-rules.", float64(m.Engine.Redacted))
	p.gauge("parulel_engine_max_conflict_size", "Largest pre-redaction conflict set observed.", float64(m.Engine.MaxConflictSize))

	p.header("parulel_engine_phase_seconds", "Per-cycle phase latency by engine phase.", "histogram")
	for _, name := range phaseNames {
		ph := m.Engine.Phases[name]
		labels := `phase="` + name + `"`
		p.histogram("parulel_engine_phase_seconds", labels, boundsNS, ph.Hist, float64(ph.TotalNS)/1e9, ph.HistCount)
	}

	if len(m.Engine.Rules) > 0 {
		p.header("parulel_rule_match_seconds_total", "Match time attributed to each rule's join work.", "counter")
		for _, r := range m.Engine.Rules {
			p.value("parulel_rule_match_seconds_total", `rule="`+promEscape(r.Rule)+`"`, float64(r.MatchNS)/1e9)
		}
		p.header("parulel_rule_tokens_total", "Partial matches materialized per rule.", "counter")
		for _, r := range m.Engine.Rules {
			p.value("parulel_rule_tokens_total", `rule="`+promEscape(r.Rule)+`"`, float64(r.Tokens))
		}
		p.header("parulel_rule_probes_total", "Join candidates tested per rule.", "counter")
		for _, r := range m.Engine.Rules {
			p.value("parulel_rule_probes_total", `rule="`+promEscape(r.Rule)+`"`, float64(r.Probes))
		}
		p.header("parulel_rule_instantiations_total", "Instantiations added to the conflict set per rule.", "counter")
		for _, r := range m.Engine.Rules {
			p.value("parulel_rule_instantiations_total", `rule="`+promEscape(r.Rule)+`"`, float64(r.Insts))
		}
		p.header("parulel_rule_fires_total", "Instantiations fired per rule.", "counter")
		for _, r := range m.Engine.Rules {
			p.value("parulel_rule_fires_total", `rule="`+promEscape(r.Rule)+`"`, float64(r.Fires))
		}
	}
	p.counter("parulel_rule_series_dropped_total", "Per-rule profile folds dropped by the series cap.", float64(m.Engine.RulesDropped))

	if len(m.Stages) > 0 {
		p.header("parulel_stage_seconds", "Request-stage latency by traced serving stage.", "histogram")
		names := make([]string, 0, len(m.Stages))
		for name := range m.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := m.Stages[name]
			labels := `stage="` + promEscape(name) + `"`
			p.histogram("parulel_stage_seconds", labels, boundsNS, st.Hist, float64(st.TotalNS)/1e9, st.HistCount)
		}
	}

	if d := m.Durability; d != nil {
		p.counter("parulel_wal_records_total", "WAL records appended.", float64(d.WALRecords))
		p.counter("parulel_wal_bytes_total", "WAL bytes appended.", float64(d.WALBytes))
		p.header("parulel_wal_fsync_seconds", "WAL fsync latency.", "histogram")
		p.histogram("parulel_wal_fsync_seconds", "", boundsNS, d.FsyncHist, float64(d.FsyncTotalNS)/1e9, d.FsyncHistCount)
		p.counter("parulel_checkpoints_total", "Checkpoints written.", float64(d.Checkpoints))
		p.counter("parulel_checkpoint_errors_total", "Checkpoint attempts that failed.", float64(d.CheckpointErrors))
		p.gauge("parulel_sessions_on_disk", "Session directories currently on disk.", float64(d.SessionsOnDisk))
		p.counter("parulel_recovery_failures_total", "Session recoveries that failed.", float64(d.RecoveryFailures))
		p.counter("parulel_wal_tail_truncations_total", "Torn WAL tails dropped during recovery.", float64(d.WALTruncations))
		p.counter("parulel_wal_group_commits_total", "Batched flushes issued under fsync=group.", float64(d.GroupCommits))
		p.counter("parulel_wal_grouped_appends_total", "Appends made durable by group-commit flushes.", float64(d.GroupedAppends))
	}

	if c := m.Cluster; c != nil {
		p.gauge("parulel_cluster_members", "Configured cluster members.", float64(c.MembersTotal))
		p.gauge("parulel_cluster_members_up", "Cluster members currently considered up.", float64(c.MembersUp))
		p.counter("parulel_cluster_proxied_requests_total", "Session requests proxied to their owner node.", float64(c.Proxied))
		p.counter("parulel_cluster_redirected_requests_total", "Session requests answered with a 307 to their owner node.", float64(c.Redirected))
		p.counter("parulel_cluster_repl_streams_opened_total", "Replication streams opened to follower nodes.", float64(c.ReplStreams))
		p.counter("parulel_cluster_repl_records_sent_total", "WAL records streamed to followers.", float64(c.ReplRecords))
		p.counter("parulel_cluster_repl_send_failures_total", "Replication sends that failed and forced a stream reset.", float64(c.ReplFailures))
		p.counter("parulel_cluster_repl_unprotected_mutations_total", "Mutations acked without a live replica (no follower reachable).", float64(c.ReplUnprotected))
		p.gauge("parulel_cluster_replica_sessions", "Follower session replicas currently held on this node.", float64(c.ReplicaSessions))
		p.counter("parulel_cluster_migrations_in_total", "Sessions migrated onto this node.", float64(c.MigrationsIn))
		p.counter("parulel_cluster_migrations_out_total", "Sessions migrated off this node.", float64(c.MigrationsOut))
		p.counter("parulel_cluster_promotions_total", "Replica sessions promoted to primary after owner failure.", float64(c.Promotions))
		p.gauge("parulel_cluster_route_overrides", "Session route overrides currently active.", float64(c.RouteOverrides))
	}
}
