package server

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"parulel/internal/match"
	"parulel/internal/stats"
)

// fetch returns a response's status, headers and body as a string.
func fetch(t *testing.T, url string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// promLine matches one exposition sample: name, optional labels, value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|\+Inf)$`)

// checkExposition validates every line of a Prometheus text body.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty exposition body")
	}
	for _, ln := range lines {
		if strings.HasPrefix(ln, "# HELP ") || strings.HasPrefix(ln, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(ln) {
			t.Errorf("bad exposition line: %q", ln)
		}
		if strings.Contains(ln, "NaN") || strings.Contains(ln, "Inf") && !strings.Contains(ln, `le="+Inf"`) {
			t.Errorf("non-finite sample: %q", ln)
		}
	}
}

func TestMetricsFreshServerNoNaN(t *testing.T) {
	// Zero cycles have run: every aggregate must still be finite JSON and
	// a valid exposition (no NaN from 0/0 percentiles or empty windows).
	_, ts := newTestServer(t, Config{})

	st, _, body := fetch(t, ts.URL+"/metrics")
	if st != http.StatusOK {
		t.Fatalf("/metrics status %d", st)
	}
	for _, bad := range []string{"NaN", "Infinity", "+Inf", "-Inf"} {
		if strings.Contains(body, bad) {
			t.Errorf("fresh /metrics contains %q:\n%s", bad, body)
		}
	}

	st, _, prom := fetch(t, ts.URL+"/metrics?format=prometheus")
	if st != http.StatusOK {
		t.Fatalf("prometheus status %d", st)
	}
	checkExposition(t, prom)
	for _, want := range []string{
		"parulel_engine_cycles_total 0",
		"parulel_sessions_live 0",
		`parulel_engine_phase_seconds_bucket{phase="match",le="+Inf"} 0`,
		`parulel_engine_phase_seconds_count{phase="match"} 0`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestMetricsAndHealthHeaders(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	st, h, _ := fetch(t, ts.URL+"/metrics")
	if st != http.StatusOK || h.Get("Content-Type") != "application/json" || h.Get("Cache-Control") != "no-cache" {
		t.Errorf("json /metrics headers: status=%d type=%q cache=%q", st, h.Get("Content-Type"), h.Get("Cache-Control"))
	}

	st, h, _ = fetch(t, ts.URL+"/metrics?format=prometheus")
	if st != http.StatusOK || h.Get("Content-Type") != "text/plain; version=0.0.4; charset=utf-8" || h.Get("Cache-Control") != "no-cache" {
		t.Errorf("prometheus /metrics headers: status=%d type=%q cache=%q", st, h.Get("Content-Type"), h.Get("Cache-Control"))
	}

	st, h, _ = fetch(t, ts.URL+"/healthz")
	if st != http.StatusOK || h.Get("Content-Type") != "application/json" || h.Get("Cache-Control") != "no-cache" {
		t.Errorf("/healthz headers: status=%d type=%q cache=%q", st, h.Get("Content-Type"), h.Get("Cache-Control"))
	}

	st, _, body := fetch(t, ts.URL+"/metrics?format=xml")
	if st != http.StatusNotAcceptable {
		t.Errorf("unknown format: status %d body %s", st, body)
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceCycles: 64})
	base := ts.URL
	info := createSession(t, base, createSessionRequest{Source: boundedSrc, Workers: 2})
	sessURL := base + "/api/v1/sessions/" + info.ID

	var tr traceResponse
	if st := call(t, "GET", sessURL+"/trace", nil, &tr); st != http.StatusOK {
		t.Fatalf("trace before run: status %d", st)
	}
	if tr.Total != 0 || len(tr.Events) != 0 || tr.Capacity != 64 {
		t.Fatalf("fresh trace: %+v", tr)
	}

	var run runResponse
	if st := call(t, "POST", sessURL+"/run", runRequest{}, &run); st != http.StatusOK {
		t.Fatalf("run: status %d", st)
	}
	if run.Cycles != 2000 {
		t.Fatalf("run cycles = %d, want 2000", run.Cycles)
	}

	if st := call(t, "GET", sessURL+"/trace", nil, &tr); st != http.StatusOK {
		t.Fatalf("trace: status %d", st)
	}
	if tr.Total != 2000 {
		t.Errorf("trace total = %d, want 2000", tr.Total)
	}
	if len(tr.Events) != 64 {
		t.Fatalf("retained %d events, want ring capacity 64", len(tr.Events))
	}
	last := tr.Events[len(tr.Events)-1]
	if last.Cycle != 2000 {
		t.Errorf("newest event cycle = %d, want 2000", last.Cycle)
	}
	for i, e := range tr.Events {
		if want := 2000 - 63 + i; e.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (oldest-first)", i, e.Cycle, want)
		}
	}
	if tr.Events[0].RuleFirings["tick"] != 1 || tr.Events[0].Fired != 1 {
		t.Errorf("event missing rule firings: %+v", tr.Events[0])
	}

	if st := call(t, "GET", sessURL+"/trace?limit=5", nil, &tr); st != http.StatusOK || len(tr.Events) != 5 {
		t.Fatalf("limit=5 gave %d events (status %d)", len(tr.Events), st)
	}
	if st := call(t, "GET", sessURL+"/trace?limit=-1", nil, nil); st != http.StatusBadRequest {
		t.Errorf("bad limit: status %d", st)
	}
}

func TestMetricsRuleProfiles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := ts.URL
	info := createSession(t, base, createSessionRequest{Source: boundedSrc})
	sessURL := base + "/api/v1/sessions/" + info.ID
	var run runResponse
	if st := call(t, "POST", sessURL+"/run", runRequest{}, &run); st != http.StatusOK {
		t.Fatalf("run: status %d", st)
	}

	var m metricsPayload
	if st := call(t, "GET", base+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("/metrics: status %d", st)
	}
	if len(m.Engine.Rules) != 1 || m.Engine.Rules[0].Rule != "tick" {
		t.Fatalf("engine.rules = %+v, want one entry for tick", m.Engine.Rules)
	}
	r := m.Engine.Rules[0]
	if r.Fires != 2000 || r.Insts < 2000 || r.MatchNS <= 0 || r.Tokens == 0 {
		t.Errorf("tick profile off: %+v", r)
	}

	st, _, prom := fetch(t, base+"/metrics?format=prometheus")
	if st != http.StatusOK {
		t.Fatalf("prometheus: status %d", st)
	}
	checkExposition(t, prom)
	if !strings.Contains(prom, `parulel_rule_fires_total{rule="tick"} 2000`) {
		t.Errorf("exposition missing per-rule fires:\n%s", prom)
	}
}

func TestCollectorConcurrentAccess(t *testing.T) {
	// Fold, per-rule fold, snapshot and session-lifecycle counters all
	// race against each other; run under -race this is the regression.
	c := newCollector()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	worker := func(fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					fn()
				}
			}
		}()
	}
	worker(func() {
		c.observe([]stats.Cycle{{Match: time.Microsecond, Fired: 1, ConflictSize: 2}})
	})
	worker(func() {
		c.observeRules([]match.RuleProfile{{Rule: "r1", MatchNS: 10, Fires: 1}, {Rule: "r2", Tokens: 3}})
	})
	worker(func() { c.snapshot(time.Second, 1, 0, 0, 0, 0, 0, nil) })
	worker(func() { c.sessionEvicted(); c.sessionCreated() })
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	p := c.snapshot(time.Second, 0, 0, 0, 0, 0, 0, nil)
	if p.Engine.Cycles == 0 || len(p.Engine.Rules) != 2 {
		t.Fatalf("collector lost data: cycles=%d rules=%+v", p.Engine.Cycles, p.Engine.Rules)
	}
}

func TestTraceReadableDuringRun(t *testing.T) {
	// The trace endpoint must not block on the session slot while a run
	// holds it.
	_, ts := newTestServer(t, Config{})
	base := ts.URL
	info := createSession(t, base, createSessionRequest{Source: drainSrc})
	sessURL := base + "/api/v1/sessions/" + info.ID

	done := make(chan struct{})
	go func() {
		defer close(done)
		call(t, "POST", sessURL+"/run", runRequest{TimeoutMS: 10_000}, nil)
	}()

	// Poll until the in-flight run has traced some cycles.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var tr traceResponse
		st := call(t, "GET", sessURL+"/trace", nil, &tr)
		if st != http.StatusOK {
			t.Fatalf("trace during run: status %d", st)
		}
		if tr.Total > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never observed traced cycles during the run")
		}
		time.Sleep(5 * time.Millisecond)
	}
	<-done
}
