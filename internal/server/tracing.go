package server

// tracing.go wires the obs span layer into the serving path. Every HTTP
// request gets a trace context — carried in from the X-Parulel-Trace
// header when a peer (or a trace-aware client) set one, freshly minted
// otherwise — and each stage the request passes through (session-slot
// wait, queue wait, WAL append, fsync, replication ack, engine run, …)
// records one span into the node's bounded SpanStore. The per-node
// store is served at GET /debug/spans; GET /cluster/trace/{trace} fans
// out to every peer and assembles the cross-node span list for one
// trace. Completed stage durations also feed the request's Server-Timing
// response header and the per-stage latency histograms in /metrics.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"parulel/internal/obs"
)

// Span stage names recorded by the server. The engine phases are
// children of stageEngineRun; everything else hangs off the ingress
// span (or the proxy span on the forwarding node).
const (
	stageIngress     = "ingress"
	stageProxy       = "proxy"
	stageSessionWait = "session.wait"
	stageQueueWait   = "queue.wait"
	stageWALAppend   = "wal.append"
	stageWALFsync    = "wal.fsync"
	stageReplAck     = "repl.ack"
	stageReplApply   = "repl.apply"
	stageEngineRun   = "engine.run"
	stageBatch       = "batch"
	stageStreamFrame = "stream.frame"
	stageTick        = "temporal.tick"
	stageJobRun      = "job.run"
	stageMigrate     = "migrate"
	stageMigrateIn   = "migrate.install"
)

// enginePhaseStages maps core.Phase indices to span stage names.
var enginePhaseStages = [4]string{"engine.match", "engine.redact", "engine.fire", "engine.apply"}

// serverTimingTokens maps span stages to Server-Timing metric names, in
// emission order. Only these stages surface in the header; the full set
// lives in the span store.
var serverTimingTokens = []struct{ stage, token string }{
	{stageSessionWait, "session"},
	{stageQueueWait, "queue"},
	{stageWALAppend, "wal"},
	{stageWALFsync, "fsync"},
	{stageReplAck, "repl"},
	{stageEngineRun, "run"},
}

// traceInfo is the per-request trace state stashed in the context.
type traceInfo struct {
	trace  string // trace id
	parent string // span id new spans parent to (the ingress span)
	// timings accumulates completed stage durations for the
	// Server-Timing response header.
	timings *reqTimings
}

// traceFrom extracts the request's trace state, nil for internal work
// (janitor, replay) whose context never passed through ServeHTTP.
func traceFrom(ctx context.Context) *traceInfo {
	ti, _ := ctx.Value(ctxKeyTrace).(*traceInfo)
	return ti
}

// traceString renders the context's trace as a wire header value with
// parent as the remote side's parent span; empty for untraced contexts.
func (s *Server) traceString(ctx context.Context, parent string) string {
	ti := traceFrom(ctx)
	if ti == nil {
		return ""
	}
	return obs.TraceContext{TraceID: ti.trace, Parent: parent, ReqID: RequestID(ctx)}.String()
}

// reqTimings accumulates per-stage durations across one request.
// Stages can complete on several goroutines (async job spawn), so the
// map is mutex-protected. All methods are nil-safe.
type reqTimings struct {
	mu sync.Mutex
	d  map[string]time.Duration
}

func (t *reqTimings) add(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.d == nil {
		t.d = make(map[string]time.Duration, 8)
	}
	t.d[stage] += d
	t.mu.Unlock()
}

// header renders the accumulated stages as a Server-Timing value
// (durations in milliseconds), empty when no mapped stage completed.
func (t *reqTimings) header() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for _, tok := range serverTimingTokens {
		d, ok := t.d[tok.stage]
		if !ok {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		b.WriteString(tok.token)
		b.WriteString(";dur=")
		b.WriteString(strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64))
	}
	return b.String()
}

// reqSpan is an in-flight span tied to its request's Server-Timing
// accumulator. All methods are nil-safe; s.startSpan returns nil on
// untraced contexts, so instrumented paths cost one nil check there.
type reqSpan struct {
	a     *obs.ActiveSpan
	ti    *traceInfo
	stage string
}

// startSpan opens a span for the request's current stage, parented to
// the ingress span. Returns nil when ctx carries no trace.
func (s *Server) startSpan(ctx context.Context, stage string) *reqSpan {
	ti := traceFrom(ctx)
	if ti == nil {
		return nil
	}
	return &reqSpan{a: s.spans.Start(ti.trace, ti.parent, stage), ti: ti, stage: stage}
}

// ID returns the span id for parenting children; empty on nil.
func (sp *reqSpan) ID() string {
	if sp == nil {
		return ""
	}
	return sp.a.ID()
}

func (sp *reqSpan) SetAttr(k, v string) {
	if sp == nil {
		return
	}
	sp.a.SetAttr(k, v)
}

// End records the span with its elapsed duration.
func (sp *reqSpan) End() time.Duration {
	if sp == nil {
		return 0
	}
	d := sp.a.End()
	sp.ti.timings.add(sp.stage, d)
	return d
}

// EndWith records the span with an externally measured duration.
func (sp *reqSpan) EndWith(d time.Duration) {
	if sp == nil {
		return
	}
	sp.a.EndWith(d)
	sp.ti.timings.add(sp.stage, d)
}

// recordSpan records one already-measured stage (ending now) under the
// given parent span id; an empty parent attaches to the ingress span.
// No-op on untraced contexts or non-positive durations.
func (s *Server) recordSpan(ctx context.Context, parent, stage string, d time.Duration) {
	ti := traceFrom(ctx)
	if ti == nil || d <= 0 {
		return
	}
	if parent == "" {
		parent = ti.parent
	}
	s.spans.Record(obs.Span{
		TraceID:  ti.trace,
		Parent:   parent,
		Stage:    stage,
		StartUNN: time.Now().Add(-d).UnixNano(),
		DurNS:    d.Nanoseconds(),
	})
	ti.timings.add(stage, d)
}

// ---- HTTP surface ----

// spansResponse is the GET /debug/spans body, and the unit the cluster
// trace assembler fetches from each peer.
type spansResponse struct {
	Node     string     `json:"node"`
	Total    uint64     `json:"total"`
	Capacity int        `json:"capacity"`
	Spans    []obs.Span `json:"spans"`
}

// handleDebugSpans serves this node's span store, filterable by
// ?trace=, ?stage=, ?min_ms= and ?limit=.
func (s *Server) handleDebugSpans(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var minDur time.Duration
	if ms := q.Get("min_ms"); ms != "" {
		f, err := strconv.ParseFloat(ms, 64)
		if err != nil || f < 0 {
			writeError(w, http.StatusBadRequest, "bad min_ms")
			return
		}
		minDur = time.Duration(f * float64(time.Millisecond))
	}
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad limit")
			return
		}
		limit = n
	}
	spans := s.spans.Query(q.Get("trace"), q.Get("stage"), minDur, limit)
	if spans == nil {
		spans = []obs.Span{}
	}
	w.Header().Set("Cache-Control", "no-cache")
	writeJSON(w, http.StatusOK, spansResponse{
		Node:     s.spans.Node(),
		Total:    s.spans.Total(),
		Capacity: s.spans.Capacity(),
		Spans:    spans,
	})
}

// handleFlightRecorder dumps the slow-request ring.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, _ *http.Request) {
	recs := s.flight.Records()
	if recs == nil {
		recs = []obs.FlightRecord{}
	}
	w.Header().Set("Cache-Control", "no-cache")
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ms": s.cfg.SlowRequestThreshold.Milliseconds(),
		"total":        s.flight.Total(),
		"capacity":     s.flight.Capacity(),
		"records":      recs,
	})
}

// FlightRecords returns the captured slow-request records, oldest
// first — the programmatic face of GET /debug/flightrecorder, used by
// the SIGQUIT dump in cmd/paruleld.
func (s *Server) FlightRecords() []obs.FlightRecord {
	return s.flight.Records()
}

// clusterTraceResponse is the GET /cluster/trace/{trace} body: every
// span the cluster retains for one trace, across all reachable nodes,
// ordered by start time.
type clusterTraceResponse struct {
	TraceID string `json:"trace_id"`
	// Nodes that contributed spans; Unreachable lists peers whose span
	// stores could not be queried (their spans may be missing).
	Nodes       []string   `json:"nodes"`
	Unreachable []string   `json:"unreachable,omitempty"`
	Spans       []obs.Span `json:"spans"`
}

// handleClusterTrace assembles the cross-node span list for one trace:
// local spans plus a fan-out to every peer's /debug/spans. Single-node
// servers answer with their local spans alone.
func (s *Server) handleClusterTrace(w http.ResponseWriter, r *http.Request) {
	trace := r.PathValue("trace")
	if _, ok := obs.ParseTraceContext("00-" + trace + "-0000000000000000-01"); !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad trace id %q (want 32 hex digits)", trace))
		return
	}
	resp := clusterTraceResponse{TraceID: trace, Spans: s.spans.Query(trace, "", 0, 0)}
	seen := map[string]bool{}
	if n := s.spans.Node(); n != "" && len(resp.Spans) > 0 {
		seen[n] = true
	}
	if cs := s.cluster; cs != nil {
		type peerResult struct {
			name  string
			spans []obs.Span
			err   error
		}
		results := make(chan peerResult, len(cs.members))
		peers := 0
		for name, m := range cs.members {
			if name == cs.cfg.Node {
				continue
			}
			peers++
			go func(name, url string) {
				spans, err := s.fetchPeerSpans(r.Context(), url, trace)
				results <- peerResult{name: name, spans: spans, err: err}
			}(name, m.PublicURL)
		}
		for i := 0; i < peers; i++ {
			res := <-results
			if res.err != nil {
				resp.Unreachable = append(resp.Unreachable, res.name)
				continue
			}
			if len(res.spans) > 0 {
				seen[res.name] = true
				resp.Spans = append(resp.Spans, res.spans...)
			}
		}
	}
	resp.Nodes = make([]string, 0, len(seen))
	for n := range seen {
		resp.Nodes = append(resp.Nodes, n)
	}
	sort.Strings(resp.Nodes)
	sort.Strings(resp.Unreachable)
	sort.Slice(resp.Spans, func(i, j int) bool {
		if resp.Spans[i].StartUNN != resp.Spans[j].StartUNN {
			return resp.Spans[i].StartUNN < resp.Spans[j].StartUNN
		}
		return resp.Spans[i].SpanID < resp.Spans[j].SpanID
	})
	if resp.Spans == nil {
		resp.Spans = []obs.Span{}
	}
	w.Header().Set("Cache-Control", "no-cache")
	writeJSON(w, http.StatusOK, resp)
}

// fetchPeerSpans queries one peer's span store for a trace.
func (s *Server) fetchPeerSpans(ctx context.Context, publicURL, trace string) ([]obs.Span, error) {
	cs := s.cluster
	ctx, cancel := context.WithTimeout(ctx, cs.cfg.IOTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, publicURL+"/debug/spans?trace="+trace, nil)
	if err != nil {
		return nil, err
	}
	resp, err := cs.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	var body spansResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Spans, nil
}
