package server

// Async runs. POST /sessions/{id}/run?async=1 registers a *job* and
// returns its id immediately; a goroutine then takes the session slot and
// drives the run exactly like the synchronous path, while the client polls
// GET /sessions/{id}/jobs/{job}. Jobs are cancelable (DELETE) until they
// finish, and their lifecycle is marked in the WAL (wal.OpJob): a job
// whose last logged status is "queued" when the process dies surfaces as
// "interrupted" after recovery.
//
// Job ids are random (crypto/rand), not sequential: uniqueness must hold
// across restarts and the id counter is deliberately not persisted.
//
// The registry is guarded by one mutex with short critical sections only —
// never held across a queue wait or an engine run — so /metrics and job
// polling stay responsive while the run queue is saturated.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"parulel/internal/core"
	"parulel/internal/wal"
)

// Job lifecycle states. queued → running → one of the terminal four.
const (
	jobQueued      = "queued"
	jobRunning     = "running"
	jobDone        = "done" // includes deadline-expired runs: work committed, session usable
	jobCanceled    = "canceled"
	jobInterrupted = "interrupted" // server died or drained mid-job
	jobError       = "error"
)

// job is one async run. The mutex guards every mutable field; the runner
// goroutine is the only writer of terminal states, so cancellation only
// flips cancelBy and fires the context.
type job struct {
	id      string
	session string

	mu       sync.Mutex
	status   string
	created  time.Time
	started  time.Time
	finished time.Time
	cancel   context.CancelFunc // nil once terminal (or for recovered jobs)
	cancelBy string             // "client" or "drain", set before cancel fires
	result   *runResponse
	errMsg   string
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status != jobQueued && j.status != jobRunning
}

func (j *job) view() jobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobInfo{
		ID:        j.id,
		Session:   j.session,
		Status:    j.status,
		CreatedAt: j.created.UTC().Format(time.RFC3339Nano),
		Error:     j.errMsg,
		Result:    j.result,
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}

// newJobID mints a 64-bit random id. Collisions are vanishingly unlikely
// and rejected by the registry anyway.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("crypto/rand unavailable: " + err.Error())
	}
	return "j" + hex.EncodeToString(b[:])
}

// keepFinishedJobs bounds terminal jobs retained per session; the oldest
// finished ones are dropped first. Live jobs are never evicted.
const keepFinishedJobs = 64

type jobRegistry struct {
	mu        sync.Mutex
	jobs      map[string]*job
	bySession map[string][]*job
}

func newJobRegistry() *jobRegistry {
	return &jobRegistry{jobs: make(map[string]*job), bySession: make(map[string][]*job)}
}

// add registers a job, dropping the session's oldest finished jobs beyond
// the retention cap. An already-known id is kept as is (recovery folds
// must not clobber a live job).
func (r *jobRegistry) add(j *job) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.jobs[j.id]; ok {
		return false
	}
	r.jobs[j.id] = j
	list := append(r.bySession[j.session], j)
	if excess := len(list) - keepFinishedJobs; excess > 0 {
		kept := list[:0]
		for _, old := range list {
			if excess > 0 && old != j && old.terminal() {
				delete(r.jobs, old.id)
				excess--
				continue
			}
			kept = append(kept, old)
		}
		list = kept
	}
	r.bySession[j.session] = list
	return true
}

func (r *jobRegistry) get(id string) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

func (r *jobRegistry) forSession(sessID string) []*job {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*job(nil), r.bySession[sessID]...)
}

// activeFor lists the session's non-terminal job ids, used to re-log their
// queued markers after a checkpoint truncates the WAL.
func (r *jobRegistry) activeFor(sessID string) []string {
	r.mu.Lock()
	list := append([]*job(nil), r.bySession[sessID]...)
	r.mu.Unlock()
	ids := make([]string, 0, len(list))
	for _, j := range list {
		if !j.terminal() {
			ids = append(ids, j.id)
		}
	}
	return ids
}

func (r *jobRegistry) activeCount() int {
	r.mu.Lock()
	list := make([]*job, 0, len(r.jobs))
	for _, j := range r.jobs {
		list = append(list, j)
	}
	r.mu.Unlock()
	n := 0
	for _, j := range list {
		if !j.terminal() {
			n++
		}
	}
	return n
}

func (r *jobRegistry) all() []*job {
	r.mu.Lock()
	defer r.mu.Unlock()
	list := make([]*job, 0, len(r.jobs))
	for _, j := range r.jobs {
		list = append(list, j)
	}
	return list
}

// dropSession forgets a deleted session's jobs.
func (r *jobRegistry) dropSession(sessID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.bySession[sessID] {
		delete(r.jobs, j.id)
	}
	delete(r.bySession, sessID)
}

// ---- server plumbing ----

// cancelAllJobs fires every live job's context; by records who asked so
// the runner can distinguish client cancels from server drain.
func (s *Server) cancelAllJobs(by string) {
	for _, j := range s.jobs.all() {
		j.mu.Lock()
		cancel := j.cancel
		if cancel != nil && j.cancelBy == "" {
			j.cancelBy = by
		}
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
}

// appendJobMarker best-effort logs a job lifecycle record. Marker loss is
// tolerable — the job still runs; recovery just cannot surface it.
func (s *Server) appendJobMarker(ctx context.Context, sess *session, jobID, status string) {
	if sess.dur == nil {
		return
	}
	if _, err := sess.dur.append(&wal.Record{Op: wal.OpJob, Job: jobID, JobStatus: status}); err != nil {
		s.log(ctx).Warn("job marker not logged", "session_id", sess.id, "job_id", jobID, "status", status, "err", err)
	}
}

// foldRecoveredJobs registers the job markers replayed from a session's
// WAL: a job whose last logged status is non-terminal was in flight when
// the process died and surfaces as interrupted.
func (s *Server) foldRecoveredJobs(sessID string, statuses map[string]string) {
	for id, status := range statuses {
		if status == jobQueued || status == jobRunning {
			status = jobInterrupted
		}
		j := &job{id: id, session: sessID, status: status, created: time.Now(), finished: time.Now()}
		if s.jobs.add(j) && status == jobInterrupted {
			s.metrics.jobFinished(jobInterrupted)
		}
	}
}

// startAsyncRun answers POST /run?async=1: register the job, log its
// queued marker, kick off the runner and reply 202. releaseActive is the
// caller's drain-accounting release, handed to the runner goroutine.
func (s *Server) startAsyncRun(w http.ResponseWriter, r *http.Request, sess *session, ticket *runTicket, timeout time.Duration, releaseActive func()) {
	// The runner outlives the request, so it gets a fresh context — but
	// one carrying the request's trace and id, so the job's spans and log
	// lines join the originating trace. The timings accumulator is fresh:
	// the 202 response's Server-Timing already shipped.
	base := context.Background()
	if ti := traceFrom(r.Context()); ti != nil {
		base = context.WithValue(base, ctxKeyTrace, &traceInfo{trace: ti.trace, parent: ti.parent, timings: &reqTimings{}})
	}
	if id := RequestID(r.Context()); id != 0 {
		base = context.WithValue(base, ctxKeyRequestID, id)
	}
	ctx, cancel := context.WithTimeout(base, timeout)
	j := &job{
		id:      newJobID(),
		session: sess.id,
		status:  jobQueued,
		created: time.Now(),
		cancel:  cancel,
	}
	for !s.jobs.add(j) {
		j.id = newJobID()
	}
	s.metrics.jobCreated()
	s.appendJobMarker(r.Context(), sess, j.id, jobQueued)
	s.log(r.Context()).Info("job queued", "job_id", j.id, "session_id", sess.id, "timeout", timeout.String())
	go s.runJob(ctx, cancel, j, ticket, releaseActive)
	writeJSON(w, http.StatusAccepted, j.view())
}

// runJob is the async runner: session slot → driveRun → terminal state.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *job, ticket *runTicket, releaseActive func()) {
	defer releaseActive()
	defer ticket.done()
	defer cancel()
	s.metrics.runStarted()

	// Session slot first, run-queue slots per slice inside driveRun — the
	// same lock order as every other path. An eviction while queued is
	// healed by re-fetching (which rehydrates under durability).
	var sess *session
	for attempt := 0; ; attempt++ {
		var err error
		sess, err = s.sessionByID(ctx, j.session)
		if err != nil {
			s.finishJob(ctx, nil, j, runOutcome{err: fmt.Errorf("%w: %w", core.ErrCanceled, err), persisted: true})
			return
		}
		if err := sess.acquire(ctx); err != nil {
			s.finishJob(ctx, nil, j, runOutcome{err: fmt.Errorf("%w: waiting for the session: %w", core.ErrCanceled, err), persisted: true})
			return
		}
		if !sess.closed.Load() {
			break
		}
		sess.release()
		if s.store == nil || attempt > 0 {
			s.finishJob(ctx, nil, j, runOutcome{err: fmt.Errorf("%w: session was evicted", core.ErrCanceled), persisted: true})
			return
		}
	}
	defer sess.release()

	j.mu.Lock()
	if j.status == jobQueued {
		j.status = jobRunning
		j.started = time.Now()
	}
	j.mu.Unlock()

	out := s.driveRun(ctx, sess, ticket, s.immediateSink(ctx, sess))
	s.finishJob(ctx, sess, j, out)
}

// finishJob maps a run outcome onto the job's terminal state, logs the
// terminal WAL marker and bumps the metrics. sess may be nil when the job
// never reached its session.
func (s *Server) finishJob(ctx context.Context, sess *session, j *job, out runOutcome) {
	var (
		status string
		msg    string
	)
	switch {
	case out.err == nil && !out.persisted:
		s.metrics.runError()
		status, msg = jobError, "run committed in memory but not durably logged"
	case out.err == nil:
		s.metrics.runCompleted()
		status = jobDone
	case errors.Is(out.err, context.DeadlineExceeded):
		s.metrics.runTimeout()
		status = jobDone
		msg = fmt.Sprintf("run exceeded its deadline; %d cycles committed, session still usable", out.resp.Cycles)
	case errors.Is(out.err, context.Canceled):
		s.metrics.runCanceled()
		j.mu.Lock()
		by := j.cancelBy
		j.mu.Unlock()
		if by == "drain" {
			status, msg = jobInterrupted, "server drained mid-job"
		} else {
			status, msg = jobCanceled, "canceled"
		}
	default:
		s.metrics.runError()
		status, msg = jobError, out.err.Error()
	}

	resp := out.resp
	j.mu.Lock()
	j.status = status
	j.finished = time.Now()
	created := j.created
	j.cancel = nil
	j.errMsg = msg
	if sess != nil {
		j.result = &resp
	}
	j.mu.Unlock()
	// One span for the job's whole life, queued wait included.
	s.recordSpan(ctx, "", stageJobRun, time.Since(created))
	s.metrics.jobFinished(status)
	if sess != nil {
		s.appendJobMarker(ctx, sess, j.id, status)
	}
	s.log(ctx).Info("job finished", "job_id", j.id, "session_id", j.session, "status", status, "cycles", resp.Cycles)
}

// ---- handlers ----

// jobForRequest resolves {job} within {id}, answering 404 itself on a miss.
// The session lookup runs first so a restarted server rehydrates (and
// thereby folds recovered job markers) before the registry is consulted.
func (s *Server) jobForRequest(w http.ResponseWriter, r *http.Request) *job {
	sess := s.lookup(w, r)
	if sess == nil {
		return nil
	}
	id := r.PathValue("job")
	j := s.jobs.get(id)
	if j == nil || j.session != sess.id {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no job %q in session %q", id, sess.id))
		return nil
	}
	return j
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if j := s.jobForRequest(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.view())
	}
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	sess := s.lookup(w, r)
	if sess == nil {
		return
	}
	jobs := s.jobs.forSession(sess.id)
	views := make([]jobInfo, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view())
	}
	sort.Slice(views, func(i, k int) bool { return views[i].CreatedAt < views[k].CreatedAt })
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// handleJobCancel requests cancellation. The reply reflects the state at
// reply time: the runner observes the canceled context asynchronously, so
// the status may still read queued/running immediately after.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobForRequest(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.status != jobQueued && j.status != jobRunning {
		j.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s already finished (%s)", j.id, j.status))
		return
	}
	if j.cancelBy == "" {
		j.cancelBy = "client"
	}
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.log(r.Context()).Info("job cancel requested", "job_id", j.id, "session_id", j.session)
	writeJSON(w, http.StatusOK, j.view())
}
