package server

// POST /sessions/{id}/batch applies an ordered list of assert/retract/run
// operations in one round-trip and — this is the point — one WAL frame:
// the collected mutation records are nested inside a single wal.OpBatch
// record, so a crash either preserves the whole applied prefix or none of
// it (a torn batch frame is dropped by recovery's tail truncation).
//
// Validation is two-phase. Structural problems (unknown op kinds,
// templates, attributes) are rejected with 400 before anything is applied.
// Runtime failures (a run hitting its deadline or the cycle cap) stop the
// batch at that op: the applied prefix stands, is persisted, and the
// response reports per-op results with the failing op's error set.

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"parulel/internal/wal"
)

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "ops is required")
		return
	}
	containsRun := false
	for i, op := range req.Ops {
		switch op.Op {
		case "assert":
			if len(op.Facts) == 0 {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("op %d: assert requires facts", i))
				return
			}
		case "retract":
			if op.Template == "" {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("op %d: retract requires template", i))
				return
			}
		case "run":
			containsRun = true
		case "tick":
			if op.Ticks < 0 {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("op %d: ticks must be non-negative", i))
				return
			}
		default:
			writeError(w, http.StatusBadRequest, fmt.Sprintf("op %d: unknown op %q (want assert, retract, run or tick)", i, op.Op))
			return
		}
	}

	// A batch with run ops is an engine run for drain purposes: shutdown
	// must wait for it, and a draining server must not start it.
	if containsRun {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		s.active++
		s.mu.Unlock()
		defer func() {
			s.mu.Lock()
			s.active--
			if s.draining && s.active == 0 {
				close(s.idle)
			}
			s.mu.Unlock()
		}()
	}

	s.withSession(w, r, func(sess *session) {
		// Schema validation needs the engine, hence the session slot.
		schema := sess.eng.Memory().Schema()
		checkFields := func(i int, template string, fields map[string]jsonValue) bool {
			tmpl, ok := schema.Lookup(template)
			if !ok {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("op %d: unknown template %q", i, template))
				return false
			}
			for attr := range fields {
				if _, ok := tmpl.AttrIndex(attr); !ok {
					writeError(w, http.StatusBadRequest, fmt.Sprintf("op %d: template %s has no attribute %q", i, template, attr))
					return false
				}
			}
			return true
		}
		for i, op := range req.Ops {
			switch op.Op {
			case "assert":
				for _, f := range op.Facts {
					if !checkFields(i, f.Template, f.Fields) {
						return
					}
					if f.TTL < 0 {
						writeError(w, http.StatusBadRequest, fmt.Sprintf("op %d: ttl must be non-negative", i))
						return
					}
				}
			case "retract":
				if !checkFields(i, op.Template, op.Fields) {
					return
				}
			}
		}

		// Execute, collecting the would-be WAL records instead of appending
		// them one by one; they land in a single OpBatch frame at the end.
		batchSp := s.startSpan(r.Context(), stageBatch)
		batchSp.SetAttr("ops", strconv.Itoa(len(req.Ops)))
		defer batchSp.End()
		var recs []wal.Record
		sink := func(rec *wal.Record) bool {
			recs = append(recs, *rec)
			return true
		}
		results := make([]batchOpResult, 0, len(req.Ops))
		applied := 0
		for _, op := range req.Ops {
			result := batchOpResult{Op: op.Op}
			switch op.Op {
			case "assert":
				inserted := make([]wal.Fact, 0, len(op.Facts))
				for j, f := range op.Facts {
					fields := toFields(f.Fields)
					el, err := sess.eng.Insert(f.Template, fields)
					if err != nil {
						result.Error = fmt.Sprintf("fact %d: %v", j, err)
						break
					}
					if f.TTL > 0 {
						sess.clock.SetTTL(el, f.TTL)
					}
					inserted = append(inserted, wal.Fact{Template: f.Template, Fields: wal.EncodeFields(fields), TTL: f.TTL})
				}
				result.Count = len(inserted)
				if len(inserted) > 0 {
					sink(&wal.Record{Op: wal.OpAssert, Facts: inserted})
				}
			case "retract":
				fields := toFields(op.Fields)
				n, err := sess.retractMatching(op.Template, fields)
				if err != nil {
					result.Error = err.Error()
					break
				}
				result.Count = n
				if n > 0 {
					sink(&wal.Record{Op: wal.OpRetract, Template: op.Template, Fields: wal.EncodeFields(fields), Count: n})
				}
			case "run":
				timeout := s.clampTimeout(op.TimeoutMS)
				ctx, cancel := context.WithTimeout(r.Context(), timeout)
				// admitForce, not admit: the batch as a whole passed
				// admission at the mutation layer; rejecting one of its ops
				// mid-flight would break the prefix contract.
				ticket := s.runQueue.admitForce(sess.id)
				s.metrics.runStarted()
				out := s.driveRun(ctx, sess, ticket, sink)
				ticket.done()
				cancel()
				resp := out.resp
				result.Run = &resp
				s.countRunOutcome(out)
				if out.err != nil {
					result.Error = out.err.Error()
				}
			case "tick":
				n := op.Ticks
				if n == 0 {
					n = 1
				}
				expired := 0
				tick0 := time.Now()
				for k := int64(0); k < n; k++ {
					res := sess.clock.Tick()
					expired += res.Expired
					result.Tick = res.Now
					// One record per tick: replay re-executes each advance and
					// verifies the clock value and expiry count it produced.
					sink(&wal.Record{Op: wal.OpTick, Tick: res.Now, Count: res.Expired})
				}
				result.Count = expired
				s.recordSpan(r.Context(), batchSp.ID(), stageTick, time.Since(tick0))
				s.metrics.ticksObserved(n, expired)
			}
			results = append(results, result)
			if result.Error != "" {
				break
			}
			applied++
		}
		s.metrics.batchObserved(applied)

		if len(recs) > 0 && !s.persist(r.Context(), sess, &wal.Record{Op: wal.OpBatch, Ops: recs}) {
			writeError(w, http.StatusInternalServerError, "batch applied in memory but not durably logged")
			return
		}
		writeJSON(w, http.StatusOK, batchResponse{
			Applied: applied,
			Results: results,
			WMSize:  sess.eng.Memory().Len(),
		})
	})
}

// clampTimeout resolves a client-requested run timeout against the
// configured default and ceiling.
func (s *Server) clampTimeout(ms int64) time.Duration {
	timeout := s.cfg.DefaultRunTimeout
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxRunTimeout {
		timeout = s.cfg.MaxRunTimeout
	}
	return timeout
}
