package server

// Crash-recovery and rehydration coverage for the durability subsystem:
// kill-and-restart over the same data directory, transparent rehydration
// after LRU eviction, checkpoint-based recovery, torn-tail tolerance,
// and replay of every mutation kind (assert, retract, run, import).

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parulel/internal/wal"
	"parulel/internal/wm"
)

// recoverySrc claims tasks with a gensym id — the recovered working
// memory is byte-identical only if replay reproduces the original time
// tags exactly, since gensym values are derived from them.
const recoverySrc = `
(literalize task n state id)
(literalize log n note)
(rule claim
  <t> <- (task ^n <n> ^state new)
-->
  (bind <g>)
  (modify <t> ^state claimed ^id <g>)
  (make log ^n <n> ^note claimed))
`

// startCrashable starts a server that the test will "crash": closing only
// the httptest listener abandons the session pool without the drain path
// that flushes and closes logs, like a process kill.
func startCrashable(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(s)
}

func assertTasks(t *testing.T, url string, from, to int) {
	t.Helper()
	var req assertRequest
	for i := from; i < to; i++ {
		req.Facts = append(req.Facts, factPayload{Template: "task", Fields: map[string]jsonValue{
			"n":     {V: wm.Int(int64(i))},
			"state": {V: wm.Sym("new")},
		}})
	}
	if st := call(t, "POST", url+"/facts", req, nil); st != http.StatusOK {
		t.Fatalf("assert: status %d", st)
	}
}

func runSession(t *testing.T, url string) runResponse {
	t.Helper()
	var resp runResponse
	if st := call(t, "POST", url+"/run", runRequest{}, &resp); st != http.StatusOK {
		t.Fatalf("run: status %d", st)
	}
	return resp
}

func exportSnapshot(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot export: status %d: %s", resp.StatusCode, body)
	}
	return string(body)
}

// driveSession applies the canonical mutation script: used both for the
// session that gets killed and for the uninterrupted control.
func driveSession(t *testing.T, url string) {
	t.Helper()
	assertTasks(t, url, 0, 4)
	runSession(t, url)
	if st := call(t, "POST", url+"/retract", retractRequest{
		Template: "task",
		Fields:   map[string]jsonValue{"n": {V: wm.Int(2)}},
	}, nil); st != http.StatusOK {
		t.Fatalf("retract: status %d", st)
	}
	assertTasks(t, url, 4, 6)
	runSession(t, url)
}

func getInfo(t *testing.T, url string) sessionInfo {
	t.Helper()
	var info sessionInfo
	if st := call(t, "GET", url, nil, &info); st != http.StatusOK {
		t.Fatalf("get session: status %d", st)
	}
	return info
}

// TestRecoveryAfterRestart is the acceptance check: a session's working
// memory, cycle count and firing count survive a kill-and-restart over
// the same data directory byte-identically, and the recovered session
// continues exactly like an uninterrupted control.
func TestRecoveryAfterRestart(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyAlways}

	tsA := startCrashable(t, cfg)
	info := createSession(t, tsA.URL, createSessionRequest{Source: recoverySrc, Workers: 2})
	if !info.Durable {
		t.Fatal("session not marked durable")
	}
	urlA := tsA.URL + "/api/v1/sessions/" + info.ID
	driveSession(t, urlA)
	wantSnap := exportSnapshot(t, urlA)
	wantInfo := getInfo(t, urlA)
	tsA.Close() // crash: no drain, no log close, no checkpoint

	sB, tsB := newTestServer(t, cfg)
	urlB := tsB.URL + "/api/v1/sessions/" + info.ID
	gotInfo := getInfo(t, urlB) // transparently rehydrates
	if gotInfo.Cycles != wantInfo.Cycles || gotInfo.Firings != wantInfo.Firings ||
		gotInfo.Redactions != wantInfo.Redactions || gotInfo.Runs != wantInfo.Runs ||
		gotInfo.WMSize != wantInfo.WMSize {
		t.Fatalf("recovered counters differ:\n got %+v\nwant %+v", gotInfo, wantInfo)
	}
	if gotSnap := exportSnapshot(t, urlB); gotSnap != wantSnap {
		t.Fatalf("recovered snapshot differs:\n-- got --\n%s\n-- want --\n%s", gotSnap, wantSnap)
	}

	// The recovered session must evolve exactly like a control session
	// that ran the same script without interruption.
	control := createSession(t, tsB.URL, createSessionRequest{Source: recoverySrc, Workers: 2})
	controlURL := tsB.URL + "/api/v1/sessions/" + control.ID
	driveSession(t, controlURL)
	for _, u := range []string{urlB, controlURL} {
		assertTasks(t, u, 6, 8)
		runSession(t, u)
	}
	if a, b := exportSnapshot(t, urlB), exportSnapshot(t, controlURL); a != b {
		t.Fatalf("post-recovery evolution diverged from control:\n-- recovered --\n%s\n-- control --\n%s", a, b)
	}

	var m metricsPayload
	if st := call(t, "GET", tsB.URL+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Durability == nil {
		t.Fatal("durability metrics missing")
	}
	if m.Durability.FoundOnBoot == 0 || m.Durability.Rehydrated == 0 || m.Sessions.Recovered == 0 {
		t.Fatalf("recovery not reflected in metrics: %+v", *m.Durability)
	}
	_ = sB
}

// TestRecoveryAfterTimedOutRun: a run killed mid-flight by its deadline
// commits a prefix of cycles; the logged cycle delta must replay to the
// identical intermediate state.
func TestRecoveryAfterTimedOutRun(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyAlways}
	tsA := startCrashable(t, cfg)
	info := createSession(t, tsA.URL, createSessionRequest{Source: spinnerSrc, Workers: 1})
	urlA := tsA.URL + "/api/v1/sessions/" + info.ID

	var timedOut struct {
		Result runResponse `json:"result"`
	}
	if st := call(t, "POST", urlA+"/run", runRequest{TimeoutMS: 150}, &timedOut); st != http.StatusGatewayTimeout {
		t.Fatalf("run: status %d, want 504", st)
	}
	if timedOut.Result.Cycles == 0 {
		t.Fatal("timed-out run committed no cycles; test is vacuous")
	}
	wantSnap := exportSnapshot(t, urlA)
	tsA.Close()

	_, tsB := newTestServer(t, cfg)
	urlB := tsB.URL + "/api/v1/sessions/" + info.ID
	if gotSnap := exportSnapshot(t, urlB); gotSnap != wantSnap {
		t.Fatalf("mid-run state not recovered:\n-- got --\n%s\n-- want --\n%s", gotSnap, wantSnap)
	}
}

// TestEvictionRehydratesTransparently: with durability on, an LRU-evicted
// session comes back from disk on its next request instead of 404/410.
func TestEvictionRehydratesTransparently(t *testing.T) {
	s, ts := newTestServer(t, Config{DataDir: t.TempDir(), MaxSessions: 1})
	first := createSession(t, ts.URL, createSessionRequest{Source: recoverySrc})
	firstURL := ts.URL + "/api/v1/sessions/" + first.ID
	driveSession(t, firstURL)
	wantSnap := exportSnapshot(t, firstURL)

	second := createSession(t, ts.URL, createSessionRequest{Source: boundedSrc}) // evicts first
	s.mu.Lock()
	_, firstLive := s.sessions[first.ID]
	s.mu.Unlock()
	if firstLive {
		t.Fatal("first session not evicted")
	}

	if gotSnap := exportSnapshot(t, firstURL); gotSnap != wantSnap {
		t.Fatalf("rehydrated snapshot differs:\n-- got --\n%s\n-- want --\n%s", gotSnap, wantSnap)
	}
	// And the second session is itself recoverable after being displaced.
	if run := runSession(t, ts.URL+"/api/v1/sessions/"+second.ID); run.Cycles == 0 {
		t.Fatal("second session did not run after rehydration")
	}

	var m metricsPayload
	if st := call(t, "GET", ts.URL+"/metrics", nil, &m); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Sessions.Evicted == 0 || m.Sessions.Recovered == 0 {
		t.Fatalf("eviction/recovery not reflected in metrics: %+v", m.Sessions)
	}
}

// TestCheckpointRecovery: with CheckpointEvery=1 every mutation triggers a
// checkpoint and empties the log, so recovery runs almost entirely off
// the checkpoint image (counters, tags, refraction set).
func TestCheckpointRecovery(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyAlways, CheckpointEvery: 1}
	tsA := startCrashable(t, cfg)
	info := createSession(t, tsA.URL, createSessionRequest{Source: recoverySrc, Workers: 2})
	urlA := tsA.URL + "/api/v1/sessions/" + info.ID
	driveSession(t, urlA)
	wantSnap := exportSnapshot(t, urlA)
	wantInfo := getInfo(t, urlA)

	dir := filepath.Join(cfg.DataDir, "sessions", info.ID)
	if _, err := os.Stat(filepath.Join(dir, "checkpoint")); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("log not emptied by checkpoint (size %d, err %v)", fi.Size(), err)
	}
	var m metricsPayload
	if st := call(t, "GET", tsA.URL+"/metrics", nil, &m); st != http.StatusOK || m.Durability == nil {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Durability.Checkpoints == 0 || m.Durability.CheckpointErrors != 0 {
		t.Fatalf("checkpoints not reflected in metrics: %+v", *m.Durability)
	}
	tsA.Close()

	_, tsB := newTestServer(t, cfg)
	urlB := tsB.URL + "/api/v1/sessions/" + info.ID
	gotInfo := getInfo(t, urlB)
	if gotInfo.Cycles != wantInfo.Cycles || gotInfo.Firings != wantInfo.Firings || gotInfo.Runs != wantInfo.Runs {
		t.Fatalf("checkpoint recovery counters differ:\n got %+v\nwant %+v", gotInfo, wantInfo)
	}
	if gotSnap := exportSnapshot(t, urlB); gotSnap != wantSnap {
		t.Fatalf("checkpoint recovery snapshot differs:\n-- got --\n%s\n-- want --\n%s", gotSnap, wantSnap)
	}
	// A recovered-from-checkpoint session must still accept new work.
	assertTasks(t, urlB, 10, 12)
	if run := runSession(t, urlB); run.Firings == 0 {
		t.Fatal("recovered session fired nothing on new facts")
	}
}

// TestRecoverMutateCrashRecover: regression for the post-checkpoint
// sequence restart. A checkpoint empties the log, so when a restart
// reopens it the scan finds nothing and the sequence counter would start
// over from zero; mutations accepted after that recovery would then carry
// seq <= the checkpoint's sequence point and the NEXT recovery would
// silently skip them as already checkpointed. CheckpointEvery must be > 1
// here so the post-recovery records survive to the second recovery
// instead of being immediately folded into a fresh checkpoint.
func TestRecoverMutateCrashRecover(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyAlways, CheckpointEvery: 3}

	tsA := startCrashable(t, cfg)
	info := createSession(t, tsA.URL, createSessionRequest{Source: recoverySrc, Workers: 2})
	urlA := tsA.URL + "/api/v1/sessions/" + info.ID
	for i := 0; i < 3; i++ { // three records: the third triggers the checkpoint
		assertTasks(t, urlA, i, i+1)
	}
	dir := filepath.Join(cfg.DataDir, "sessions", info.ID)
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("checkpoint did not empty the log (size %d, err %v); test premise broken", fi.Size(), err)
	}
	tsA.Close() // crash 1: the only sequence witness is the checkpoint header

	// Recover, mutate past the checkpoint, and crash again before the
	// next checkpoint fires (2 records < CheckpointEvery).
	tsB := startCrashable(t, cfg)
	urlB := tsB.URL + "/api/v1/sessions/" + info.ID
	assertTasks(t, urlB, 3, 4)
	runSession(t, urlB)
	wantSnap := exportSnapshot(t, urlB)
	wantInfo := getInfo(t, urlB)
	tsB.Close() // crash 2

	_, tsC := newTestServer(t, cfg)
	urlC := tsC.URL + "/api/v1/sessions/" + info.ID
	gotInfo := getInfo(t, urlC)
	if gotInfo.Cycles != wantInfo.Cycles || gotInfo.Firings != wantInfo.Firings ||
		gotInfo.Runs != wantInfo.Runs || gotInfo.WMSize != wantInfo.WMSize {
		t.Fatalf("mutations after the first recovery were lost:\n got %+v\nwant %+v", gotInfo, wantInfo)
	}
	if gotSnap := exportSnapshot(t, urlC); gotSnap != wantSnap {
		t.Fatalf("mutations after the first recovery were lost:\n-- got --\n%s\n-- want --\n%s", gotSnap, wantSnap)
	}
}

// TestTornTailRecovery: garbage appended to the log (a torn final write)
// is cut off and the session recovers to the last valid record.
func TestTornTailRecovery(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyAlways}
	tsA := startCrashable(t, cfg)
	info := createSession(t, tsA.URL, createSessionRequest{Source: recoverySrc})
	urlA := tsA.URL + "/api/v1/sessions/" + info.ID
	assertTasks(t, urlA, 0, 3)
	runSession(t, urlA)
	wantSnap := exportSnapshot(t, urlA)
	tsA.Close()

	logPath := filepath.Join(cfg.DataDir, "sessions", info.ID, "wal.log")
	f, err := os.OpenFile(logPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x40\x00\x00\x00\xde\xad\xbe\xefgarbage tail from a torn write")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, tsB := newTestServer(t, cfg)
	urlB := tsB.URL + "/api/v1/sessions/" + info.ID
	if gotSnap := exportSnapshot(t, urlB); gotSnap != wantSnap {
		t.Fatalf("torn-tail recovery snapshot differs:\n-- got --\n%s\n-- want --\n%s", gotSnap, wantSnap)
	}
	var m metricsPayload
	if st := call(t, "GET", tsB.URL+"/metrics", nil, &m); st != http.StatusOK || m.Durability == nil {
		t.Fatalf("metrics: status %d", st)
	}
	if m.Durability.WALTruncations == 0 || m.Durability.WALTruncatedBytes == 0 {
		t.Fatalf("torn tail not reflected in metrics: %+v", *m.Durability)
	}
}

// TestImportReplay: snapshot imports are logged verbatim and replayed.
func TestImportReplay(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), Fsync: wal.PolicyAlways}
	tsA := startCrashable(t, cfg)
	info := createSession(t, tsA.URL, createSessionRequest{Source: recoverySrc})
	urlA := tsA.URL + "/api/v1/sessions/" + info.ID

	imported := "(wm (task ^n 40 ^state new) (task ^n 41 ^state new))\n"
	resp, err := http.Post(urlA+"/snapshot", "text/plain", strings.NewReader(imported))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import: status %d", resp.StatusCode)
	}
	runSession(t, urlA)
	wantSnap := exportSnapshot(t, urlA)
	tsA.Close()

	_, tsB := newTestServer(t, cfg)
	urlB := tsB.URL + "/api/v1/sessions/" + info.ID
	if gotSnap := exportSnapshot(t, urlB); gotSnap != wantSnap {
		t.Fatalf("import replay snapshot differs:\n-- got --\n%s\n-- want --\n%s", gotSnap, wantSnap)
	}
}

// TestDeleteRemovesDurableState: deleting a session (live or evicted)
// removes its directory; after a restart it is gone for good.
func TestDeleteRemovesDurableState(t *testing.T) {
	cfg := Config{DataDir: t.TempDir()}
	_, ts := newTestServer(t, cfg)
	info := createSession(t, ts.URL, createSessionRequest{Source: recoverySrc})
	url := ts.URL + "/api/v1/sessions/" + info.ID
	if st := call(t, "DELETE", url, nil, nil); st != http.StatusOK {
		t.Fatalf("delete: status %d", st)
	}
	if _, err := os.Stat(filepath.Join(cfg.DataDir, "sessions", info.ID)); !os.IsNotExist(err) {
		t.Fatalf("session directory survived deletion: %v", err)
	}
	if st := call(t, "GET", url, nil, nil); st != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", st)
	}

	_, ts2 := newTestServer(t, cfg)
	if st := call(t, "GET", ts2.URL+"/api/v1/sessions/"+info.ID, nil, nil); st != http.StatusNotFound {
		t.Fatalf("deleted session recovered after restart: status %d", st)
	}
}
