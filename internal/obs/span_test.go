package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736"},
		{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", Parent: "00f067aa0ba902b7"},
		{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", Parent: "00f067aa0ba902b7", ReqID: 0xdeadbeef},
		{TraceID: "4bf92f3577b34da6a3ce929d0e0e4736", ReqID: 7},
	}
	for _, tc := range cases {
		got, ok := ParseTraceContext(tc.String())
		if !ok || got != tc {
			t.Fatalf("round-trip %+v via %q: got %+v ok=%v", tc, tc.String(), got, ok)
		}
	}
	if s := (TraceContext{}).String(); s != "" {
		t.Fatalf("zero context formats as %q, want empty", s)
	}
}

func TestParseTraceContextRejects(t *testing.T) {
	bad := []string{
		"",
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // unknown version
		"00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",   // short trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902-01",   // short parent
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",  // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", // non-hex
		"garbage",
	}
	for _, s := range bad {
		if tc, ok := ParseTraceContext(s); ok {
			t.Fatalf("ParseTraceContext(%q) accepted: %+v", s, tc)
		}
	}
	// A zero parent parses as "no parent"; a junk r-segment is ignored.
	tc, ok := ParseTraceContext("00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01-rnothex")
	if !ok || tc.Parent != "" || tc.ReqID != 0 {
		t.Fatalf("zero-parent parse: %+v ok=%v", tc, ok)
	}
}

func TestSpanStoreEviction(t *testing.T) {
	st := NewSpanStore("n0", 3)
	trace := "4bf92f3577b34da6a3ce929d0e0e4736"
	for i := 0; i < 5; i++ {
		st.Record(Span{TraceID: trace, Stage: fmt.Sprintf("s%d", i), DurNS: int64(i) * 1e6})
	}
	if st.Total() != 5 || st.Capacity() != 3 {
		t.Fatalf("total %d cap %d, want 5/3", st.Total(), st.Capacity())
	}
	got := st.Query(trace, "", 0, 0)
	if len(got) != 3 || got[0].Stage != "s2" || got[2].Stage != "s4" {
		t.Fatalf("retained %+v, want oldest-first s2..s4", got)
	}
	for _, sp := range got {
		if sp.SpanID == "" || sp.Node != "n0" {
			t.Fatalf("Record did not fill id/node: %+v", sp)
		}
	}
	if got := st.Query(trace, "", 3*time.Millisecond, 0); len(got) != 2 {
		t.Fatalf("min-duration filter kept %+v", got)
	}
	if got := st.Query(trace, "", 0, 1); len(got) != 1 || got[0].Stage != "s4" {
		t.Fatalf("limit=1 kept %+v, want the most recent", got)
	}
	if got := st.Query("other", "", 0, 0); len(got) != 0 {
		t.Fatalf("foreign trace matched %+v", got)
	}
}

// TestSpanStoreConcurrentEviction hammers a tiny ring from concurrent
// writers and readers so the race detector can check the eviction path.
func TestSpanStoreConcurrentEviction(t *testing.T) {
	st := NewSpanStore("n0", 8)
	var wg sync.WaitGroup
	traces := []string{
		"11111111111111111111111111111111",
		"22222222222222222222222222222222",
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := st.Start(traces[w%2], "", "stage")
				sp.SetAttr("i", "x")
				sp.End()
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				st.Query(traces[r], "", 0, 0)
				st.Total()
			}
		}(r)
	}
	wg.Wait()
	if st.Total() != 2000 {
		t.Fatalf("total %d, want 2000", st.Total())
	}
	if got := st.Query("", "", 0, 0); len(got) != 8 {
		t.Fatalf("retained %d spans, want a full ring of 8", len(got))
	}
}

func TestActiveSpanNilSafe(t *testing.T) {
	var sp *ActiveSpan
	if sp.ID() != "" || sp.End() != 0 {
		t.Fatal("nil ActiveSpan must no-op")
	}
	sp.SetAttr("k", "v")
	sp.EndWith(time.Second)

	var st *SpanStore
	if st.Start("t", "", "s") != nil || st.Record(Span{}) != "" || st.Query("", "", 0, 0) != nil {
		t.Fatal("nil SpanStore must no-op")
	}
}

func TestActiveSpanEndIdempotent(t *testing.T) {
	st := NewSpanStore("", 4)
	sp := st.Start("4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7", "stage")
	sp.SetAttr("k", "v")
	first := sp.End()
	sp.End()
	sp.EndWith(time.Hour)
	if st.Total() != 1 {
		t.Fatalf("double End recorded %d spans", st.Total())
	}
	got := st.Query("", "", 0, 0)[0]
	if got.SpanID != sp.ID() || got.Attrs["k"] != "v" || got.DurNS != first.Nanoseconds() {
		t.Fatalf("recorded %+v, want id %s attr k=v dur %d", got, sp.ID(), first)
	}
}

func TestFlightRecorderRing(t *testing.T) {
	fr := NewFlightRecorder(2)
	for i := 0; i < 3; i++ {
		fr.Record(FlightRecord{TraceID: fmt.Sprintf("t%d", i), DurNS: int64(i)})
	}
	if fr.Total() != 3 || fr.Capacity() != 2 {
		t.Fatalf("total %d cap %d, want 3/2", fr.Total(), fr.Capacity())
	}
	recs := fr.Records()
	if len(recs) != 2 || recs[0].TraceID != "t1" || recs[1].TraceID != "t2" {
		t.Fatalf("retained %+v, want t1,t2 oldest-first", recs)
	}
}
