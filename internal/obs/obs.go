// Package obs provides the observability primitives threaded through the
// engine, the server, and the CLIs: a structured per-cycle Event built
// from core.Tracer callbacks, a bounded in-memory Ring served at
// GET /sessions/{id}/trace, and a JSONL writer/reader used by
// `parulel -trace=file.jsonl`.
//
// The package depends only on core (for the Tracer contract); the server
// and CLIs depend on it, never the other way around.
package obs

import (
	"encoding/json"
	"errors"
	"io"
	"sync"
	"time"

	"parulel/internal/core"
)

// Event is one committed engine cycle in structured form. It is the JSON
// unit of both the trace endpoint and JSONL trace files, so renaming a
// field is a wire-format change.
type Event struct {
	// Cycle is the 1-based cumulative cycle number.
	Cycle int `json:"cycle"`
	// Per-phase wall-clock durations in nanoseconds.
	MatchNS  int64 `json:"match_ns"`
	RedactNS int64 `json:"redact_ns"`
	FireNS   int64 `json:"fire_ns"`
	ApplyNS  int64 `json:"apply_ns"`
	// ConflictSet and Eligible are the conflict-set size and its
	// unrefracted subset after the match phase.
	ConflictSet int `json:"conflict_set"`
	Eligible    int `json:"eligible"`
	// Redacted, RedactionRounds, and Survivors describe the meta-rule
	// fixpoint outcome.
	Redacted        int `json:"redacted"`
	RedactionRounds int `json:"redaction_rounds"`
	Survivors       int `json:"survivors"`
	// Fired is the total instantiations fired; RuleFirings breaks it down
	// by rule name (omitted when nothing fired, e.g. all-redacted cycles).
	Fired       int            `json:"fired"`
	RuleFirings map[string]int `json:"rule_firings,omitempty"`
	// DeltaSize and WriteConflicts describe the reconciled commit.
	DeltaSize      int  `json:"delta_size"`
	WriteConflicts int  `json:"write_conflicts"`
	Halted         bool `json:"halted"`
}

// builder assembles Events from the core.Tracer callback sequence and
// hands each completed cycle to emit. Per the Tracer contract, callbacks
// arrive from a single goroutine; emit is the only point that needs
// synchronization with readers. A CycleStart not followed by Commit (a
// quiescence probe) is discarded, as the contract requires.
type builder struct {
	pending Event
	open    bool
	emit    func(Event)
}

func (b *builder) CycleStart(n int) {
	b.pending = Event{Cycle: n}
	b.open = true
}

func (b *builder) PhaseEnd(p core.Phase, d time.Duration) {
	switch p {
	case core.PhaseMatch:
		b.pending.MatchNS = d.Nanoseconds()
	case core.PhaseRedact:
		b.pending.RedactNS = d.Nanoseconds()
	case core.PhaseFire:
		b.pending.FireNS = d.Nanoseconds()
	case core.PhaseApply:
		b.pending.ApplyNS = d.Nanoseconds()
	}
}

func (b *builder) InstantiationsFound(conflictSet, eligible int) {
	b.pending.ConflictSet = conflictSet
	b.pending.Eligible = eligible
}

func (b *builder) Redacted(redacted, rounds, survivors int) {
	b.pending.Redacted = redacted
	b.pending.RedactionRounds = rounds
	b.pending.Survivors = survivors
}

func (b *builder) RuleFired(rule string, count int) {
	if b.pending.RuleFirings == nil {
		b.pending.RuleFirings = make(map[string]int)
	}
	b.pending.RuleFirings[rule] = count
	b.pending.Fired += count
}

func (b *builder) Commit(deltaSize, writeConflicts int, halted bool) {
	if !b.open {
		return
	}
	b.open = false
	b.pending.DeltaSize = deltaSize
	b.pending.WriteConflicts = writeConflicts
	b.pending.Halted = halted
	b.emit(b.pending)
}

// Ring is a bounded cycle-event tracer: it keeps the most recent capacity
// events and counts everything ever recorded. Unlike most tracers it is
// safe to *read* concurrently with the engine goroutine that feeds it —
// the trace HTTP endpoint snapshots a session's ring while a run is in
// flight — so the buffer is mutex-protected.
type Ring struct {
	builder
	mu    sync.Mutex
	buf   []Event
	start int // index of the oldest event
	n     int // events currently held
	total uint64
}

var _ core.Tracer = (*Ring)(nil)

// DefaultRingCapacity is used when NewRing is given a non-positive
// capacity.
const DefaultRingCapacity = 512

// NewRing returns a ring tracer holding the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	r := &Ring{buf: make([]Event, capacity)}
	r.builder.emit = r.record
	return r
}

func (r *Ring) record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
	} else {
		r.buf[r.start] = e
		r.start = (r.start + 1) % len(r.buf)
	}
	r.total++
}

// Events returns up to limit of the most recent events, oldest first.
// limit <= 0 means all retained events.
func (r *Ring) Events(limit int) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Event, n)
	first := r.start + (r.n - n) // skip the oldest beyond limit
	for i := 0; i < n; i++ {
		out[i] = r.buf[(first+i)%len(r.buf)]
	}
	return out
}

// Total returns the number of events ever recorded, including those that
// have been overwritten.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Capacity returns the ring's fixed size.
func (r *Ring) Capacity() int { return len(r.buf) }

// JSONLWriter is a tracer that encodes each committed cycle as one JSON
// line. It is not safe for concurrent use; errors are sticky and
// reported by Err so the engine loop never sees them.
type JSONLWriter struct {
	builder
	enc *json.Encoder
	err error
}

var _ core.Tracer = (*JSONLWriter)(nil)

// NewJSONLWriter returns a tracer writing JSONL events to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	j := &JSONLWriter{enc: json.NewEncoder(w)}
	j.builder.emit = func(e Event) {
		if j.err == nil {
			j.err = j.enc.Encode(e)
		}
	}
	return j
}

// Err returns the first write or encoding error, if any.
func (j *JSONLWriter) Err() error { return j.err }

// ReadJSONL decodes a stream of JSONL events, tolerating blank lines.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
		out = append(out, e)
	}
}

// Multi fans callbacks out to several tracers in order. Nil entries are
// dropped; Multi of zero or one live tracer returns nil or the tracer
// itself, keeping the engine's nil-check fast path intact.
func Multi(tracers ...core.Tracer) core.Tracer {
	live := make(multiTracer, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multiTracer []core.Tracer

func (m multiTracer) CycleStart(n int) {
	for _, t := range m {
		t.CycleStart(n)
	}
}

func (m multiTracer) PhaseEnd(p core.Phase, d time.Duration) {
	for _, t := range m {
		t.PhaseEnd(p, d)
	}
}

func (m multiTracer) InstantiationsFound(conflictSet, eligible int) {
	for _, t := range m {
		t.InstantiationsFound(conflictSet, eligible)
	}
}

func (m multiTracer) Redacted(redacted, rounds, survivors int) {
	for _, t := range m {
		t.Redacted(redacted, rounds, survivors)
	}
}

func (m multiTracer) RuleFired(rule string, count int) {
	for _, t := range m {
		t.RuleFired(rule, count)
	}
}

func (m multiTracer) Commit(deltaSize, writeConflicts int, halted bool) {
	for _, t := range m {
		t.Commit(deltaSize, writeConflicts, halted)
	}
}
