package obs

// Distributed request tracing. A Span is one timed stage of a request
// (HTTP ingress, queue wait, WAL append, replication round-trip, engine
// run, …); spans carrying the same trace id — possibly recorded on
// different nodes — assemble into one cross-cluster tree via parent
// links. Each node keeps its recent spans in a bounded SpanStore served
// at GET /debug/spans; GET /cluster/trace/{id} fans out to peers and
// merges. The trace context travels between nodes in the
// X-Parulel-Trace header (proxy hops, redirects) and as an attribute on
// replication/migration streams.

import (
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"strings"
	"sync"
	"time"

	"parulel/internal/core"
)

// Span is one completed, timed stage of a traced request. It is the
// JSON unit of /debug/spans and /cluster/trace, so renaming a field is
// a wire-format change.
type Span struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the span id of the enclosing stage; empty for a trace's
	// local root (the ingress span on the node the client hit).
	Parent string `json:"parent_id,omitempty"`
	// Node is the cluster member that recorded the span (empty when the
	// server runs single-node without a cluster name).
	Node  string `json:"node,omitempty"`
	Stage string `json:"stage"`
	// StartUNN is the wall-clock start in Unix nanoseconds; the duration
	// itself is measured on the monotonic clock.
	StartUNN int64             `json:"start_unix_ns"`
	DurNS    int64             `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// NewTraceID mints a 128-bit random trace id (32 hex digits).
func NewTraceID() string { return randHex(16) }

// NewSpanID mints a 64-bit random span id (16 hex digits).
func NewSpanID() string { return randHex(8) }

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on the supported platforms; a zero id
		// degrades tracing, not correctness.
		return strings.Repeat("0", 2*n)
	}
	return hex.EncodeToString(b)
}

// TraceHeader carries the trace context across HTTP hops (client →
// node, proxy → owner, 307 redirects) and is echoed on responses so
// callers learn the trace id of the request they just made.
const TraceHeader = "X-Parulel-Trace"

// TraceContext is the parsed form of the TraceHeader value:
//
//	00-<32 hex trace id>-<16 hex parent span id>-01[-r<hex request id>]
//
// The first four segments follow the W3C traceparent layout; the
// optional trailing r-segment propagates the origin node's request id so
// access logs on every hop join on one id.
type TraceContext struct {
	TraceID string
	// Parent is the caller's span id — spans started under this context
	// without an explicit local parent attach here.
	Parent string
	// ReqID is the request id minted by the node the client first hit;
	// zero when absent.
	ReqID uint64
}

// String formats the context as a TraceHeader value. A zero context
// formats as the empty string.
func (tc TraceContext) String() string {
	if tc.TraceID == "" {
		return ""
	}
	parent := tc.Parent
	if parent == "" {
		parent = "0000000000000000"
	}
	s := "00-" + tc.TraceID + "-" + parent + "-01"
	if tc.ReqID != 0 {
		s += "-r" + strconv.FormatUint(tc.ReqID, 16)
	}
	return s
}

// ParseTraceContext parses a TraceHeader value, tolerating a missing
// request-id segment and an all-zero parent. ok is false when the value
// is empty or malformed.
func ParseTraceContext(s string) (tc TraceContext, ok bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 || parts[0] != "00" {
		return TraceContext{}, false
	}
	trace, parent := parts[1], parts[2]
	if len(trace) != 32 || !isHex(trace) || len(parent) != 16 || !isHex(parent) {
		return TraceContext{}, false
	}
	if trace == strings.Repeat("0", 32) {
		return TraceContext{}, false
	}
	tc.TraceID = trace
	if parent != "0000000000000000" {
		tc.Parent = parent
	}
	for _, seg := range parts[4:] {
		if len(seg) > 1 && seg[0] == 'r' {
			if id, err := strconv.ParseUint(seg[1:], 16, 64); err == nil {
				tc.ReqID = id
			}
		}
	}
	return tc, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F') {
			return false
		}
	}
	return true
}

// DefaultSpanCapacity is used when NewSpanStore is given a non-positive
// capacity.
const DefaultSpanCapacity = 4096

// SpanStore is a node's bounded ring of recent spans. Writers (request
// handlers, replication streams) and readers (/debug/spans, the cluster
// trace assembler) run concurrently, so the buffer is mutex-protected;
// when full, recording evicts the oldest span.
type SpanStore struct {
	node string
	// OnRecord, when set before the store is shared, observes every
	// completed span (the server feeds per-stage latency histograms from
	// it). Called outside the store lock.
	OnRecord func(Span)

	mu    sync.Mutex
	buf   []Span
	start int // index of the oldest span
	n     int
	total uint64
}

// NewSpanStore returns a store tagging spans with node, holding the
// most recent capacity spans.
func NewSpanStore(node string, capacity int) *SpanStore {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	return &SpanStore{node: node, buf: make([]Span, capacity)}
}

// Node returns the node name spans are tagged with.
func (st *SpanStore) Node() string {
	if st == nil {
		return ""
	}
	return st.node
}

// Record inserts a completed span, filling SpanID and Node when empty,
// and returns the span id. Nil-safe.
func (st *SpanStore) Record(sp Span) string {
	if st == nil || sp.TraceID == "" {
		return ""
	}
	if sp.SpanID == "" {
		sp.SpanID = NewSpanID()
	}
	if sp.Node == "" {
		sp.Node = st.node
	}
	st.mu.Lock()
	if st.n < len(st.buf) {
		st.buf[(st.start+st.n)%len(st.buf)] = sp
		st.n++
	} else {
		st.buf[st.start] = sp
		st.start = (st.start + 1) % len(st.buf)
	}
	st.total++
	st.mu.Unlock()
	if st.OnRecord != nil {
		st.OnRecord(sp)
	}
	return sp.SpanID
}

// Query returns retained spans matching every given filter, oldest
// first: trace and stage match exactly when non-empty, minDur keeps
// spans at least that long, limit > 0 keeps the most recent matches.
func (st *SpanStore) Query(trace, stage string, minDur time.Duration, limit int) []Span {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []Span
	for i := 0; i < st.n; i++ {
		sp := st.buf[(st.start+i)%len(st.buf)]
		if trace != "" && sp.TraceID != trace {
			continue
		}
		if stage != "" && sp.Stage != stage {
			continue
		}
		if minDur > 0 && sp.DurNS < minDur.Nanoseconds() {
			continue
		}
		out = append(out, sp)
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Total returns the number of spans ever recorded, including evicted
// ones.
func (st *SpanStore) Total() uint64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.total
}

// Capacity returns the ring's fixed size.
func (st *SpanStore) Capacity() int {
	if st == nil {
		return 0
	}
	return len(st.buf)
}

// Start opens a live span under trace/parent. It returns nil — and
// every ActiveSpan method no-ops — when the store is nil or the request
// carries no trace, keeping untraced paths at one nil check per stage.
func (st *SpanStore) Start(trace, parent, stage string) *ActiveSpan {
	if st == nil || trace == "" {
		return nil
	}
	return &ActiveSpan{
		store: st,
		t0:    time.Now(),
		sp: Span{
			TraceID:  trace,
			SpanID:   NewSpanID(),
			Parent:   parent,
			Stage:    stage,
			StartUNN: time.Now().UnixNano(),
		},
	}
}

// ActiveSpan is a span being timed. Not safe for concurrent use; the
// serving path times each stage from a single goroutine.
type ActiveSpan struct {
	store *SpanStore
	t0    time.Time
	sp    Span
	done  bool
}

// ID returns the span id (empty on nil), for parenting child spans.
func (a *ActiveSpan) ID() string {
	if a == nil {
		return ""
	}
	return a.sp.SpanID
}

// SetAttr attaches one key=value attribute. Nil-safe.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	if a.sp.Attrs == nil {
		a.sp.Attrs = make(map[string]string, 4)
	}
	a.sp.Attrs[k] = v
}

// End records the span with its elapsed monotonic duration and returns
// that duration. Safe to call on nil and idempotent.
func (a *ActiveSpan) End() time.Duration {
	if a == nil {
		return 0
	}
	d := time.Since(a.t0)
	a.EndWith(d)
	return d
}

// EndWith records the span with an externally measured duration (e.g. a
// sum of queue waits across run slices). Nil-safe and idempotent.
func (a *ActiveSpan) EndWith(d time.Duration) {
	if a == nil || a.done {
		return
	}
	a.done = true
	a.sp.DurNS = d.Nanoseconds()
	a.store.Record(a.sp)
}

// PhaseAccum bridges the engine's core.Tracer cycle hooks into the span
// layer: it accumulates per-phase wall-clock totals across cycles, and
// the server diffs snapshots around a run to emit one child span per
// engine phase. Unlike the ring tracer it keeps no per-cycle state, so
// it is cheap enough to stay attached for a session's whole life.
type PhaseAccum struct {
	mu     sync.Mutex
	totals [4]time.Duration
	cycles uint64
}

var _ core.Tracer = (*PhaseAccum)(nil)

// PhaseTotals is a snapshot of cumulative per-phase engine time,
// indexed by core.Phase (match, redact, fire, apply).
type PhaseTotals [4]time.Duration

// Sub returns the element-wise difference p - q.
func (p PhaseTotals) Sub(q PhaseTotals) PhaseTotals {
	for i := range p {
		p[i] -= q[i]
	}
	return p
}

// Sum returns the total engine time across phases.
func (p PhaseTotals) Sum() time.Duration {
	var s time.Duration
	for _, d := range p {
		s += d
	}
	return s
}

func (p *PhaseAccum) CycleStart(int) {}

func (p *PhaseAccum) PhaseEnd(ph core.Phase, d time.Duration) {
	if int(ph) >= len(p.totals) {
		return
	}
	p.mu.Lock()
	p.totals[ph] += d
	p.mu.Unlock()
}

func (p *PhaseAccum) InstantiationsFound(int, int) {}
func (p *PhaseAccum) Redacted(int, int, int)       {}
func (p *PhaseAccum) RuleFired(string, int)        {}

func (p *PhaseAccum) Commit(int, int, bool) {
	p.mu.Lock()
	p.cycles++
	p.mu.Unlock()
}

// Snapshot returns the cumulative per-phase totals and committed cycle
// count. Nil-safe (zero totals).
func (p *PhaseAccum) Snapshot() (PhaseTotals, uint64) {
	if p == nil {
		return PhaseTotals{}, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totals, p.cycles
}

// DefaultFlightRecorderCapacity bounds the slow-request ring when the
// configured size is non-positive.
const DefaultFlightRecorderCapacity = 64

// FlightRecord is one slow request captured with its span tree.
type FlightRecord struct {
	TraceID     string `json:"trace_id"`
	Method      string `json:"method"`
	Path        string `json:"path"`
	Status      int    `json:"status"`
	DurNS       int64  `json:"duration_ns"`
	CapturedUNN int64  `json:"captured_unix_ns"`
	Spans       []Span `json:"spans"`
}

// FlightRecorder is a bounded ring of slow-request captures — the
// "black box" dumped on demand (GET /debug/flightrecorder) or on
// SIGQUIT. Safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightRecord
	start int
	n     int
	total uint64
}

// NewFlightRecorder returns a recorder holding the most recent capacity
// captures.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightRecorderCapacity
	}
	return &FlightRecorder{buf: make([]FlightRecord, capacity)}
}

// Record captures one slow request. Nil-safe.
func (f *FlightRecorder) Record(rec FlightRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n < len(f.buf) {
		f.buf[(f.start+f.n)%len(f.buf)] = rec
		f.n++
	} else {
		f.buf[f.start] = rec
		f.start = (f.start + 1) % len(f.buf)
	}
	f.total++
}

// Records returns the retained captures, oldest first. Nil-safe.
func (f *FlightRecorder) Records() []FlightRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightRecord, f.n)
	for i := 0; i < f.n; i++ {
		out[i] = f.buf[(f.start+i)%len(f.buf)]
	}
	return out
}

// Total returns the number of captures ever recorded. Nil-safe.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Capacity returns the ring's fixed size. Nil-safe.
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.buf)
}
