package obs

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"parulel/internal/core"
)

// feedCycle drives one complete cycle through a tracer, mimicking the
// engine's callback order.
func feedCycle(tr core.Tracer, n int, fired map[string]int) {
	tr.CycleStart(n)
	tr.PhaseEnd(core.PhaseMatch, time.Duration(n)*time.Microsecond)
	tr.InstantiationsFound(n+2, n+1)
	tr.PhaseEnd(core.PhaseRedact, time.Microsecond)
	tr.Redacted(1, 1, n)
	tr.PhaseEnd(core.PhaseFire, 2*time.Microsecond)
	for rule, c := range fired {
		tr.RuleFired(rule, c)
	}
	tr.PhaseEnd(core.PhaseApply, 3*time.Microsecond)
	tr.Commit(n, 0, false)
}

func TestRingRecordsCompleteCycles(t *testing.T) {
	r := NewRing(8)
	feedCycle(r, 1, map[string]int{"a": 2, "b": 1})
	evs := r.Events(0)
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Cycle != 1 || e.ConflictSet != 3 || e.Eligible != 2 {
		t.Fatalf("bad match fields: %+v", e)
	}
	if e.MatchNS != time.Microsecond.Nanoseconds() {
		t.Fatalf("MatchNS = %d", e.MatchNS)
	}
	if e.Fired != 3 || e.RuleFirings["a"] != 2 || e.RuleFirings["b"] != 1 {
		t.Fatalf("bad firings: %+v", e)
	}
	if e.DeltaSize != 1 || e.Halted {
		t.Fatalf("bad commit fields: %+v", e)
	}
}

func TestRingDiscardsQuiescenceProbe(t *testing.T) {
	r := NewRing(8)
	// Quiescence: CycleStart followed by a match phase but no Commit.
	r.CycleStart(1)
	r.PhaseEnd(core.PhaseMatch, time.Microsecond)
	r.InstantiationsFound(0, 0)
	if got := len(r.Events(0)); got != 0 {
		t.Fatalf("probe recorded %d events, want 0", got)
	}
	// The probe is discarded when the next cycle starts and commits.
	feedCycle(r, 1, nil)
	if evs := r.Events(0); len(evs) != 1 || evs[0].Cycle != 1 {
		t.Fatalf("after probe+cycle got %+v, want one cycle-1 event", evs)
	}
	// A Commit with no open cycle must be ignored.
	r2 := NewRing(8)
	r2.Commit(0, 0, false)
	if got := len(r2.Events(0)); got != 0 {
		t.Fatalf("stray commit recorded %d events, want 0", got)
	}
}

func TestRingWraparoundAndLimit(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		feedCycle(r, i, nil)
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	evs := r.Events(0)
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, e := range evs {
		if e.Cycle != 7+i {
			t.Fatalf("event %d has cycle %d, want %d (oldest-first)", i, e.Cycle, 7+i)
		}
	}
	evs = r.Events(2)
	if len(evs) != 2 || evs[0].Cycle != 9 || evs[1].Cycle != 10 {
		t.Fatalf("limit=2 gave %+v", evs)
	}
}

func TestRingConcurrentReadsDuringFeed(t *testing.T) {
	r := NewRing(16)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				r.Events(0)
				r.Total()
			}
		}
	}()
	for i := 1; i <= 200; i++ {
		feedCycle(r, i, map[string]int{"r": 1})
	}
	close(done)
	wg.Wait()
	if r.Total() != 200 {
		t.Fatalf("Total = %d, want 200", r.Total())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	feedCycle(w, 1, map[string]int{"left": 4})
	feedCycle(w, 2, nil)
	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("wrote %d lines, want 2", got)
	}
	evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(evs) != 2 {
		t.Fatalf("read %d events, want 2", len(evs))
	}
	if evs[0].Cycle != 1 || evs[0].RuleFirings["left"] != 4 || evs[1].Cycle != 2 {
		t.Fatalf("round-trip mismatch: %+v", evs)
	}
	if evs[1].RuleFirings != nil {
		t.Fatalf("empty firings should stay nil, got %+v", evs[1].RuleFirings)
	}
}

func TestMultiFansOutAndFiltersNil(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of no live tracers should be nil")
	}
	r := NewRing(4)
	if Multi(nil, r) != core.Tracer(r) {
		t.Fatal("Multi of one live tracer should return it unchanged")
	}
	r2 := NewRing(4)
	m := Multi(r, nil, r2)
	feedCycle(m, 1, nil)
	a, b := r.Events(0), r2.Events(0)
	if len(a) != 1 || !reflect.DeepEqual(a, b) {
		t.Fatalf("fan-out mismatch: %+v vs %+v", a, b)
	}
}
