package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func sampleRun() *Run {
	r := &Run{}
	r.Add(Cycle{Match: 40 * time.Millisecond, Redact: 10 * time.Millisecond,
		Fire: 30 * time.Millisecond, Apply: 20 * time.Millisecond,
		ConflictSize: 10, Redacted: 4, Fired: 6, DeltaSize: 12})
	r.Add(Cycle{Match: 60 * time.Millisecond, Redact: 30 * time.Millisecond,
		Fire: 10 * time.Millisecond, Apply: 0,
		ConflictSize: 25, Redacted: 20, Fired: 5, DeltaSize: 5})
	return r
}

func TestTotals(t *testing.T) {
	m, re, f, a := sampleRun().Totals()
	if m != 100*time.Millisecond || re != 40*time.Millisecond ||
		f != 40*time.Millisecond || a != 20*time.Millisecond {
		t.Errorf("totals: %v %v %v %v", m, re, f, a)
	}
}

func TestBreakdownSumsTo100(t *testing.T) {
	m, re, f, a := sampleRun().Breakdown()
	if sum := m + re + f + a; math.Abs(sum-100) > 1e-9 {
		t.Errorf("breakdown sums to %v", sum)
	}
	if m != 50 {
		t.Errorf("match share = %v, want 50", m)
	}
}

func TestBreakdownEmptyRun(t *testing.T) {
	var r Run
	m, re, f, a := r.Breakdown()
	if m != 0 || re != 0 || f != 0 || a != 0 {
		t.Error("empty run should have zero shares")
	}
}

func TestCounters(t *testing.T) {
	r := sampleRun()
	if r.TotalFired() != 11 {
		t.Errorf("fired = %d", r.TotalFired())
	}
	if r.TotalRedacted() != 24 {
		t.Errorf("redacted = %d", r.TotalRedacted())
	}
	if r.MaxConflictSize() != 25 {
		t.Errorf("max conflict = %d", r.MaxConflictSize())
	}
}

func TestString(t *testing.T) {
	s := sampleRun().String()
	for _, want := range []string{"cycles=2", "fired=11", "redacted=24", "match=50.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}
