package stats

import (
	"testing"
	"time"
)

func mkRun(n int, base time.Duration) *Run {
	r := &Run{}
	for i := 1; i <= n; i++ {
		r.Add(Cycle{
			Match:        time.Duration(i) * base,
			Redact:       time.Duration(i) * base / 2,
			Fire:         time.Duration(i) * base * 2,
			Apply:        base,
			ConflictSize: i,
			Fired:        i,
			Redacted:     1,
			DeltaSize:    2,
		})
	}
	return r
}

func TestMergeAndTotals(t *testing.T) {
	a := mkRun(3, time.Millisecond)
	b := mkRun(2, time.Millisecond)
	a.Merge(b, nil, &Run{})
	if len(a.Cycles) != 5 {
		t.Fatalf("merged cycles = %d, want 5", len(a.Cycles))
	}
	m, _, _, _ := a.Totals()
	// 1+2+3 from a, 1+2 from b = 9ms of match time.
	if m != 9*time.Millisecond {
		t.Fatalf("match total = %v, want 9ms", m)
	}
	if len(b.Cycles) != 2 {
		t.Fatal("Merge must not modify its source")
	}
}

func TestClone(t *testing.T) {
	a := mkRun(2, time.Millisecond)
	c := a.Clone()
	c.Add(Cycle{})
	if len(a.Cycles) != 2 || len(c.Cycles) != 3 {
		t.Fatalf("clone shares storage: a=%d c=%d", len(a.Cycles), len(c.Cycles))
	}
}

func TestTruncate(t *testing.T) {
	a := mkRun(10, time.Millisecond)
	a.Truncate(4)
	if len(a.Cycles) != 4 {
		t.Fatalf("truncated len = %d, want 4", len(a.Cycles))
	}
	// Keeps the newest records: fired counts 7,8,9,10.
	if a.Cycles[0].Fired != 7 || a.Cycles[3].Fired != 10 {
		t.Fatalf("truncate kept wrong records: %+v", a.Cycles)
	}
	a.Truncate(100) // no-op
	if len(a.Cycles) != 4 {
		t.Fatal("truncate to larger size must be a no-op")
	}
}

func TestQuantile(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	ds := []time.Duration{5, 1, 3, 2, 4} // unsorted on purpose
	cases := []struct {
		q    float64
		want time.Duration
	}{{0, 1}, {0.5, 3}, {0.95, 5}, {0.99, 5}, {1, 5}}
	for _, c := range cases {
		if got := Quantile(ds, c.q); got != c.want {
			t.Errorf("Quantile(%.2f) = %v, want %v", c.q, got, c.want)
		}
	}
	if ds[0] != 5 {
		t.Fatal("Quantile must not reorder its input")
	}
	if got := QuantileInts([]int{9, 7, 8}, 0.5); got != 8 {
		t.Fatalf("QuantileInts median = %d, want 8", got)
	}
}

func TestSummarize(t *testing.T) {
	r := mkRun(100, time.Microsecond)
	s := r.Summarize()
	if s.Cycles != 100 {
		t.Fatalf("cycles = %d", s.Cycles)
	}
	if s.Fired != 5050 || s.Redacted != 100 || s.DeltaTotal != 200 {
		t.Fatalf("counters wrong: %+v", s)
	}
	if s.MaxConflict != 100 || s.ConflictP50 != 50 || s.ConflictP95 != 95 || s.ConflictP99 != 99 {
		t.Fatalf("conflict percentiles wrong: %+v", s)
	}
	if s.Match.P50 != 50*time.Microsecond || s.Match.P99 != 99*time.Microsecond {
		t.Fatalf("match percentiles wrong: %+v", s.Match)
	}
	if s.Match.Max != 100*time.Microsecond {
		t.Fatalf("match max = %v", s.Match.Max)
	}
	if s.Fire.Total != 2*s.Match.Total || s.Redact.Total*2 != s.Match.Total {
		t.Fatalf("phase totals inconsistent: %+v", s)
	}
	var empty Run
	es := empty.Summarize()
	if es.Cycles != 0 || es.Match.P99 != 0 {
		t.Fatalf("empty summary should be zero: %+v", es)
	}
}

func TestHist(t *testing.T) {
	h := NewHist()
	if h.NonZero() {
		t.Fatal("fresh histogram should be empty")
	}
	h.Observe(500 * time.Nanosecond) // bucket 0 (≤1µs)
	h.Observe(1 * time.Microsecond)  // bucket 0 (inclusive bound)
	h.Observe(3 * time.Millisecond)  // ≤5ms bucket
	h.Observe(time.Minute)           // overflow
	if h.Total() != 4 {
		t.Fatalf("total = %d, want 4", h.Total())
	}
	if h.Counts[0] != 2 {
		t.Fatalf("≤1µs bucket = %d, want 2", h.Counts[0])
	}
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Fatal("minute sample should land in the overflow bucket")
	}
	if len(h.Counts) != len(HistBounds)+1 {
		t.Fatal("histogram must have one overflow bucket")
	}
}
