// Package stats collects per-cycle phase timings and counters for the
// rule engines. Experiment E5 (cycle-phase breakdown) is computed directly
// from these records.
package stats

import (
	"fmt"
	"strings"
	"time"
)

// Cycle records one engine cycle.
type Cycle struct {
	// Phase wall-clock durations.
	Match  time.Duration // matcher delta application (parallel section)
	Redact time.Duration // meta-rule fixpoint
	Fire   time.Duration // RHS evaluation (parallel section)
	Apply  time.Duration // working-memory delta reconciliation + commit

	// Counters.
	ConflictSize int // eligible instantiations before redaction
	Redacted     int // instantiations removed by meta-rules
	Fired        int // instantiations fired
	DeltaSize    int // WM changes produced
}

// Run accumulates the cycles of one engine run.
type Run struct {
	Cycles []Cycle
}

// Add appends a cycle record.
func (r *Run) Add(c Cycle) { r.Cycles = append(r.Cycles, c) }

// Totals sums the phase durations across all cycles.
func (r *Run) Totals() (match, redact, fire, apply time.Duration) {
	for _, c := range r.Cycles {
		match += c.Match
		redact += c.Redact
		fire += c.Fire
		apply += c.Apply
	}
	return
}

// Breakdown returns each phase's share of total time, in percent. Shares
// are zero when the run recorded no time at all.
func (r *Run) Breakdown() (matchPct, redactPct, firePct, applyPct float64) {
	m, re, f, a := r.Totals()
	total := m + re + f + a
	if total == 0 {
		return 0, 0, 0, 0
	}
	pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(total) }
	return pct(m), pct(re), pct(f), pct(a)
}

// TotalFired sums firings across cycles.
func (r *Run) TotalFired() int {
	n := 0
	for _, c := range r.Cycles {
		n += c.Fired
	}
	return n
}

// TotalRedacted sums redactions across cycles.
func (r *Run) TotalRedacted() int {
	n := 0
	for _, c := range r.Cycles {
		n += c.Redacted
	}
	return n
}

// MaxConflictSize returns the largest pre-redaction conflict set seen.
func (r *Run) MaxConflictSize() int {
	m := 0
	for _, c := range r.Cycles {
		if c.ConflictSize > m {
			m = c.ConflictSize
		}
	}
	return m
}

// String renders a one-line summary.
func (r *Run) String() string {
	m, re, f, a := r.Breakdown()
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d fired=%d redacted=%d", len(r.Cycles), r.TotalFired(), r.TotalRedacted())
	fmt.Fprintf(&b, " match=%.1f%% redact=%.1f%% fire=%.1f%% apply=%.1f%%", m, re, f, a)
	return b.String()
}
