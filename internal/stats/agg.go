package stats

import (
	"sort"
	"time"
)

// This file holds the aggregation layer over raw Cycle records: merging
// runs, percentile summaries, and fixed-bucket latency histograms. The
// server's /metrics endpoint is the primary consumer; the benchmark
// harness reuses the totals.

// Merge appends the cycles of every other run into r, in order. The
// sources are not modified.
func (r *Run) Merge(others ...*Run) {
	for _, o := range others {
		if o == nil {
			continue
		}
		r.Cycles = append(r.Cycles, o.Cycles...)
	}
}

// Clone returns a deep copy of the run.
func (r *Run) Clone() *Run {
	return &Run{Cycles: append([]Cycle(nil), r.Cycles...)}
}

// Truncate drops the oldest cycles until at most n remain, bounding the
// memory held by a long-lived aggregator.
func (r *Run) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if len(r.Cycles) > n {
		r.Cycles = append(r.Cycles[:0:0], r.Cycles[len(r.Cycles)-n:]...)
	}
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of ds using the
// nearest-rank method on a sorted copy. It returns 0 for an empty input.
func Quantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[rank(len(sorted), q)]
}

// QuantileInts is Quantile over integer samples (conflict-set sizes,
// delta sizes).
func QuantileInts(xs []int, q float64) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	return sorted[rank(len(sorted), q)]
}

// rank maps a quantile to a 0-based index into n sorted samples.
func rank(n int, q float64) int {
	switch {
	case q <= 0:
		return 0
	case q >= 1:
		return n - 1
	}
	i := int(q*float64(n)+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// PhaseStats summarizes one phase's per-cycle latencies.
type PhaseStats struct {
	Total time.Duration `json:"total_ns"`
	Max   time.Duration `json:"max_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// phaseStats computes PhaseStats from raw samples.
func phaseStats(ds []time.Duration) PhaseStats {
	var ps PhaseStats
	for _, d := range ds {
		ps.Total += d
		if d > ps.Max {
			ps.Max = d
		}
	}
	ps.P50 = Quantile(ds, 0.50)
	ps.P95 = Quantile(ds, 0.95)
	ps.P99 = Quantile(ds, 0.99)
	return ps
}

// Summary aggregates a run's cycles: counter totals plus per-phase
// latency percentiles and conflict-set size percentiles.
type Summary struct {
	Cycles      int `json:"cycles"`
	Fired       int `json:"fired"`
	Redacted    int `json:"redacted"`
	DeltaTotal  int `json:"delta_total"`
	MaxConflict int `json:"max_conflict_size"`
	ConflictP50 int `json:"conflict_p50"`
	ConflictP95 int `json:"conflict_p95"`
	ConflictP99 int `json:"conflict_p99"`

	Match  PhaseStats `json:"match"`
	Redact PhaseStats `json:"redact"`
	Fire   PhaseStats `json:"fire"`
	Apply  PhaseStats `json:"apply"`
}

// Summarize computes the aggregate view of the run.
func (r *Run) Summarize() Summary {
	n := len(r.Cycles)
	match := make([]time.Duration, n)
	redact := make([]time.Duration, n)
	fire := make([]time.Duration, n)
	apply := make([]time.Duration, n)
	conflict := make([]int, n)
	s := Summary{Cycles: n}
	for i, c := range r.Cycles {
		match[i], redact[i], fire[i], apply[i] = c.Match, c.Redact, c.Fire, c.Apply
		conflict[i] = c.ConflictSize
		s.Fired += c.Fired
		s.Redacted += c.Redacted
		s.DeltaTotal += c.DeltaSize
		if c.ConflictSize > s.MaxConflict {
			s.MaxConflict = c.ConflictSize
		}
	}
	s.ConflictP50 = QuantileInts(conflict, 0.50)
	s.ConflictP95 = QuantileInts(conflict, 0.95)
	s.ConflictP99 = QuantileInts(conflict, 0.99)
	s.Match = phaseStats(match)
	s.Redact = phaseStats(redact)
	s.Fire = phaseStats(fire)
	s.Apply = phaseStats(apply)
	return s
}

// HistBounds are the upper bounds (inclusive) of the latency histogram
// buckets: a 1-2-5 ladder from 1µs to 10s, plus an implicit overflow
// bucket. Chosen so one histogram spans micro-cycle toy programs and
// multi-second production cycles alike.
var HistBounds = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

// Hist is a fixed-bucket latency histogram. Counts has one entry per
// HistBounds bucket plus a final overflow bucket.
type Hist struct {
	Counts []uint64 `json:"counts"`
}

// NewHist returns an empty histogram over HistBounds.
func NewHist() *Hist { return &Hist{Counts: make([]uint64, len(HistBounds)+1)} }

// Observe adds one sample.
func (h *Hist) Observe(d time.Duration) {
	i := sort.Search(len(HistBounds), func(i int) bool { return d <= HistBounds[i] })
	h.Counts[i]++
}

// Total returns the number of observed samples.
func (h *Hist) Total() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// NonZero reports whether the histogram has any samples.
func (h *Hist) NonZero() bool { return h.Total() > 0 }
