// Package programs embeds the PARULEL rule programs used by the examples,
// the test suite and the benchmark harness, and provides compiled access
// to them.
package programs

import (
	"embed"
	"fmt"

	"parulel/internal/compile"
	"parulel/internal/lang"
)

//go:embed src/*.par
var sources embed.FS

// Names of the embedded programs.
const (
	Quickstart = "quickstart"
	Alexsys    = "alexsys"
	Waltz      = "waltz"
	Closure    = "closure"
	Manners    = "manners"
	Life       = "life"
	Circuit    = "circuit"
)

// All lists the embedded program names.
func All() []string {
	return []string{Quickstart, Alexsys, Waltz, Closure, Manners, Life, Circuit}
}

// Source returns the raw PARULEL source of a named program.
func Source(name string) (string, error) {
	b, err := sources.ReadFile("src/" + name + ".par")
	if err != nil {
		return "", fmt.Errorf("programs: unknown program %q", name)
	}
	return string(b), nil
}

// Load parses and compiles a named program. Each call returns a fresh
// compiled program (compiled programs are immutable, but rule Index
// values are per-program, so sharing across differently composed programs
// would be confusing).
func Load(name string) (*compile.Program, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	p, err := compile.CompileSource(src)
	if err != nil {
		return nil, fmt.Errorf("programs: %s: %w", name, err)
	}
	return p, nil
}

// LoadWithoutMetaRules parses a named program, strips its meta-rules, and
// compiles the rest. Experiment E6 uses this to show what parallel firing
// does when redaction is absent.
func LoadWithoutMetaRules(name string) (*compile.Program, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("programs: %s: %w", name, err)
	}
	ast.MetaRules = nil
	p, err := compile.Compile(ast)
	if err != nil {
		return nil, fmt.Errorf("programs: %s: %w", name, err)
	}
	return p, nil
}

// AST returns the parsed (uncompiled) form of a named program, for
// source-to-source tools such as copy-and-constrain.
func AST(name string) (*lang.Program, error) {
	src, err := Source(name)
	if err != nil {
		return nil, err
	}
	ast, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("programs: %s: %w", name, err)
	}
	return ast, nil
}
