package programs

import (
	"strings"
	"testing"
)

func TestAllProgramsLoadAndHaveMeta(t *testing.T) {
	// Every shipped program should demonstrate redaction except the ones
	// whose domains don't need it.
	wantMeta := map[string]bool{
		Quickstart: true, Alexsys: true, Waltz: true, Closure: true, Manners: true,
		Life:    false, // conflict-free by construction: no meta-rules needed
		Circuit: true,
	}
	for _, name := range All() {
		p, err := Load(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(p.Rules) == 0 {
			t.Errorf("%s: no rules", name)
		}
		if wantMeta[name] && len(p.MetaRules) == 0 {
			t.Errorf("%s: expected meta-rules", name)
		}
	}
}

func TestSourceAndAST(t *testing.T) {
	src, err := Source(Alexsys)
	if err != nil || !strings.Contains(src, "metarule one-award-per-pool") {
		t.Fatalf("Source: %v", err)
	}
	ast, err := AST(Alexsys)
	if err != nil || len(ast.MetaRules) != 2 {
		t.Fatalf("AST: %v / %d metarules", err, len(ast.MetaRules))
	}
	if _, err := Source("ghost"); err == nil {
		t.Error("unknown source should fail")
	}
	if _, err := AST("ghost"); err == nil {
		t.Error("unknown AST should fail")
	}
	if _, err := LoadWithoutMetaRules("ghost"); err == nil {
		t.Error("unknown program should fail")
	}
}

func TestLoadReturnsFreshPrograms(t *testing.T) {
	a, err := Load(Closure)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(Closure)
	if err != nil {
		t.Fatal(err)
	}
	if a == b || a.Rules[0] == b.Rules[0] {
		t.Error("Load must return fresh compiled programs")
	}
}

func TestStripMetaKeepsRules(t *testing.T) {
	full, err := Load(Waltz)
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := LoadWithoutMetaRules(Waltz)
	if err != nil {
		t.Fatal(err)
	}
	if len(stripped.MetaRules) != 0 {
		t.Error("meta-rules not stripped")
	}
	if len(stripped.Rules) != len(full.Rules) {
		t.Error("object rules must be preserved")
	}
}
