// Package match defines the interface between the execution engines and
// the incremental match algorithms (RETE in match/rete, TREAT in
// match/treat), and the Instantiation type both produce.
//
// A Matcher owns a *partition* of the program's rules. The PARULEL engine
// runs one matcher per worker (production-level match parallelism, as on
// the DADO-style machines the paper targeted); the OPS5 baseline runs a
// single matcher over all rules.
package match

import (
	"fmt"
	"sort"
	"strings"

	"parulel/internal/compile"
	"parulel/internal/wm"
)

// Instantiation is a complete match of one rule: one WME per positive
// condition element. Instantiations are immutable.
type Instantiation struct {
	Rule *compile.Rule
	// WMEs holds the matched elements indexed by positive CE.
	WMEs []*wm.WME
	key  Key
}

// Key is a compact, comparable instantiation identity: the rule's
// declaration index, the length of the WME vector, the first keyTagsInline
// time tags verbatim, and an FNV-1a hash folding in the whole time-tag
// vector. Building a Key performs no heap allocation, unlike the
// fmt-formatted string key it replaced, and Keys hash as fixed-size values
// in the engine's hot maps (conflict sets, refraction, redaction,
// change collectors).
//
// Keys are a pure function of (rule index, time-tag vector), so equal
// instantiations produced by different matcher implementations or worker
// partitions have equal Keys. For rules with up to keyTagsInline positive
// condition elements — every embedded program — the key is exact. Deeper
// rules additionally rely on the 64-bit hash over the tail: two distinct
// instantiations of the same rule collide only if they agree on the first
// keyTagsInline tags, the vector length, and the FNV-1a hash of the full
// vector (probability ~2^-64 per candidate pair).
type Key struct {
	Rule int32
	Len  uint16
	Hash uint64
	Tags [keyTagsInline]int64
}

// keyTagsInline is the number of leading time tags stored verbatim in a
// Key. Four covers the deepest rules of every embedded program.
const keyTagsInline = 4

// FNV-1a 64-bit parameters (hash/fnv, inlined to keep key construction
// allocation- and interface-free).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// NewInstantiation builds an instantiation and its dedup key.
func NewInstantiation(rule *compile.Rule, wmes []*wm.WME) *Instantiation {
	in := &Instantiation{Rule: rule, WMEs: wmes}
	k := Key{Rule: int32(rule.Index), Len: uint16(len(wmes))}
	h := uint64(fnvOffset64)
	for i, w := range wmes {
		t := uint64(w.Time)
		for s := uint(0); s < 64; s += 8 {
			h = (h ^ (t >> s & 0xff)) * fnvPrime64
		}
		if i < keyTagsInline {
			k.Tags[i] = w.Time
		}
	}
	k.Hash = h
	in.key = k
	return in
}

// Key is a unique, deterministic identifier derived from the rule index
// and the time tags of the matched WMEs. Equal instantiations produced by
// different matcher implementations have equal keys.
func (in *Instantiation) Key() Key { return in.key }

// KeyString renders the identity in the legacy human-readable form
// `ruleIndex:tag:tag:…`. Used for gensym symbols and test diagnostics;
// hot paths use the comparable Key instead.
func (in *Instantiation) KeyString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", in.Rule.Index)
	for _, w := range in.WMEs {
		fmt.Fprintf(&b, ":%d", w.Time)
	}
	return b.String()
}

// Tag returns the instantiation's recency tag: the maximum time tag among
// its WMEs. Exposed to meta-rules as `(tag <i>)`.
func (in *Instantiation) Tag() int64 {
	var max int64
	for _, w := range in.WMEs {
		if w.Time > max {
			max = w.Time
		}
	}
	return max
}

// Compare imposes the deterministic total instantiation order used by
// `(precedes <i> <j>)` and by the engines for reproducible iteration:
// first by rule declaration index, then by the WME time-tag vector
// lexicographically.
func (in *Instantiation) Compare(o *Instantiation) int {
	switch {
	case in.Rule.Index < o.Rule.Index:
		return -1
	case in.Rule.Index > o.Rule.Index:
		return 1
	}
	n := len(in.WMEs)
	if len(o.WMEs) < n {
		n = len(o.WMEs)
	}
	for i := 0; i < n; i++ {
		switch {
		case in.WMEs[i].Time < o.WMEs[i].Time:
			return -1
		case in.WMEs[i].Time > o.WMEs[i].Time:
			return 1
		}
	}
	switch {
	case len(in.WMEs) < len(o.WMEs):
		return -1
	case len(in.WMEs) > len(o.WMEs):
		return 1
	}
	return 0
}

// Binding returns the value of a compiled variable reference.
func (in *Instantiation) Binding(ref compile.VarRef) wm.Value {
	return in.WMEs[ref.CE].Fields[ref.Field]
}

// String renders the instantiation for traces: rule name plus time tags.
func (in *Instantiation) String() string {
	var b strings.Builder
	b.WriteString(in.Rule.Name)
	b.WriteString(" [")
	for i, w := range in.WMEs {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d", w.Time)
	}
	b.WriteString("]")
	return b.String()
}

// Changes reports the conflict-set delta produced by one working-memory
// delta.
type Changes struct {
	Added   []*Instantiation
	Removed []*Instantiation
}

// MemStats reports a matcher's state-size counters, used by experiment E4
// (RETE vs TREAT memory).
type MemStats struct {
	// AlphaItems counts WMEs held across alpha memories (with sharing, a
	// WME in two alpha memories counts twice).
	AlphaItems int
	// BetaTokens counts partial-match tokens (RETE only; TREAT holds no
	// beta state).
	BetaTokens int
	// ConflictSet counts complete instantiations currently held.
	ConflictSet int
}

// RuleProfile attributes match-layer activity to one rule. It is the unit
// of the per-rule profiles served at /metrics and printed by
// `parbench -ruleprofile`; Fires is filled in by the engine (the match
// layer never sees firings).
type RuleProfile struct {
	Rule string `json:"rule"`
	// MatchNS is the match time attributed to this rule's join work
	// (beta-network propagation for RETE, seeded joins for TREAT). Shared
	// alpha-memory maintenance is not attributable and is excluded. Only
	// populated by matchers built with profiling enabled.
	MatchNS int64 `json:"match_ns"`
	// Tokens counts partial matches materialized (RETE beta tokens /
	// TREAT seeded-join extensions).
	Tokens uint64 `json:"tokens"`
	// Probes counts candidate pairs tested at join and negation points.
	Probes uint64 `json:"probes"`
	// Insts counts instantiations added to the conflict set.
	Insts uint64 `json:"insts"`
	// Fires counts instantiations fired (engine-filled).
	Fires uint64 `json:"fires"`
}

// RuleProfiler is implemented by matchers that attribute work per rule.
// The engine merges profiles across its workers via this interface, so
// implementations lacking it simply contribute nothing.
type RuleProfiler interface {
	// RuleProfiles returns one profile per rule of the partition, in
	// declaration order.
	RuleProfiles() []RuleProfile
}

// Matcher is an incremental match algorithm over a fixed partition of
// rules. Implementations are not safe for concurrent use; the engines give
// each matcher to exactly one worker.
type Matcher interface {
	// Apply feeds a working-memory delta (removals first, then additions)
	// and returns the resulting conflict-set changes.
	Apply(delta wm.Delta) Changes
	// ConflictSet returns the current complete matches in the deterministic
	// instantiation order.
	ConflictSet() []*Instantiation
	// MemStats reports current state sizes.
	MemStats() MemStats
}

// Factory constructs a matcher over a rule partition. rete.New and
// treat.New satisfy this signature.
type Factory func(rules []*compile.Rule) Matcher

// EvalEnv adapts a WME vector to the expression evaluation environment for
// LHS filter tests (no locals, no meta context). The zero value is not
// usable; construct with the vector to evaluate against.
type EvalEnv struct {
	Vec []*wm.WME
}

// Ref returns the referenced field value.
func (e EvalEnv) Ref(r compile.VarRef) wm.Value { return e.Vec[r.CE].Fields[r.Field] }

// Local panics: LHS tests cannot reference RHS locals.
func (e EvalEnv) Local(int) wm.Value { panic("match: LHS test referenced an RHS local") }

// MetaVal panics: LHS tests have no meta context.
func (e EvalEnv) MetaVal(int, compile.VarRef) wm.Value { panic("match: not a meta context") }

// MetaTag panics: LHS tests have no meta context.
func (e EvalEnv) MetaTag(int) int64 { panic("match: not a meta context") }

// MetaRuleName panics: LHS tests have no meta context.
func (e EvalEnv) MetaRuleName(int) string { panic("match: not a meta context") }

// MetaPrecedes panics: LHS tests have no meta context.
func (e EvalEnv) MetaPrecedes(int, int) bool { panic("match: not a meta context") }

// EvalFilters evaluates a CE's filter expressions against a WME vector
// under the given execution mode (bytecode VM or tree walker). A filter
// that errors at runtime (e.g. comparing incompatible values fed by a
// weakly constrained pattern) counts as a failed test, matching OPS5
// practice of treating predicate failure as no-match.
func EvalFilters(ce *compile.CondElem, vec []*wm.WME, mode compile.EvalMode) bool {
	if len(ce.Filters) == 0 {
		return true
	}
	env := EvalEnv{Vec: vec}
	for _, f := range ce.Filters {
		v, err := mode.Eval(f, env)
		if err != nil || !v.Truthy() {
			return false
		}
	}
	return true
}

// SortInstantiations sorts a slice in the deterministic total order.
func SortInstantiations(ins []*Instantiation) {
	sort.Slice(ins, func(i, j int) bool { return ins[i].Compare(ins[j]) < 0 })
}
