// Package matchtest provides a conformance suite run against every
// match.Matcher implementation, plus a differential harness that drives
// two implementations with identical random working-memory histories and
// requires identical conflict sets after every step.
package matchtest

import (
	"fmt"
	"math/rand"
	"testing"

	"parulel/internal/compile"
	"parulel/internal/match"
	"parulel/internal/wm"
)

// Programs is the set of representative rule programs the suite exercises.
// Each stresses a different matcher feature.
var Programs = map[string]string{
	"two-way-join": `
(literalize pool  id amount status)
(literalize order id lo hi filled)
(rule propose
  (pool  ^id <p> ^amount <a> ^status free)
  (order ^id <o> ^lo <lo> ^hi <hi> ^filled no)
  (test (and (>= <a> <lo>) (<= <a> <hi>)))
-->
  (halt))
`,
	"three-way-chain": `
(literalize node id next)
(rule chain3
  (node ^id <a> ^next <b>)
  (node ^id <b> ^next <c>)
  (node ^id <c> ^next <d>)
-->
  (halt))
`,
	"self-join-same-template": `
(literalize item id group)
(rule pair
  (item ^id <a> ^group <g>)
  (item ^id (<> <a>) ^group <g>)
-->
  (halt))
`,
	"negation": `
(literalize task id state)
(literalize lock id)
(rule runnable
  (task ^id <t> ^state ready)
  - (lock ^id <t>)
-->
  (halt))
`,
	"negation-first": `
(literalize guard on)
(literalize job id)
(rule unguarded
  - (guard ^on yes)
  (job ^id <j>)
-->
  (halt))
`,
	"double-negation": `
(literalize a id)
(literalize b id)
(literalize c id)
(rule lonely
  (a ^id <x>)
  - (b ^id <x>)
  - (c ^id (> <x>))
-->
  (halt))
`,
	"intra-element": `
(literalize pairx l r)
(rule same
  (pairx ^l <v> ^r <v>)
-->
  (halt))
`,
	"pred-consts": `
(literalize m v w)
(rule band
  (m ^v (> 3) ^w (<= 7))
  (m ^v (<> 5))
-->
  (halt))
`,
	"disjunction": `
(literalize card suit rank)
(rule royal-red
  (card ^suit << hearts diamonds >> ^rank <r>)
  (card ^suit << clubs spades >> ^rank <r>)
-->
  (halt))
`,
}

// Compiled returns the compiled form of a named program.
func Compiled(t testing.TB, name string) *compile.Program {
	t.Helper()
	src, ok := Programs[name]
	if !ok {
		t.Fatalf("matchtest: unknown program %q", name)
	}
	p, err := compile.CompileSource(src)
	if err != nil {
		t.Fatalf("matchtest: compile %s: %v", name, err)
	}
	return p
}

// Keys extracts instantiation keys, in the slice's order, for
// comparisons (KeyString form, so failures read as rule:tag:tag…).
func Keys(ins []*match.Instantiation) []string {
	out := make([]string, len(ins))
	for i, in := range ins {
		out[i] = in.KeyString()
	}
	return out
}

// Driver replays a random insert/remove history against a memory and one
// or more matchers.
type Driver struct {
	Mem      *wm.Memory
	Matchers []match.Matcher
	rng      *rand.Rand
	live     []*wm.WME
}

// NewDriver builds a driver with its own deterministic random source.
func NewDriver(prog *compile.Program, seed int64, factories ...match.Factory) *Driver {
	d := &Driver{
		Mem: wm.NewMemory(prog.Schema),
		rng: rand.New(rand.NewSource(seed)),
	}
	for _, f := range factories {
		d.Matchers = append(d.Matchers, f(prog.Rules))
	}
	return d
}

// Step performs one random working-memory event (weighted 2:1 insert over
// remove) and applies the resulting delta to every matcher. gen produces a
// random fact for insertion.
func (d *Driver) Step(gen func(r *rand.Rand) (string, map[string]wm.Value)) wm.Delta {
	var delta wm.Delta
	if len(d.live) > 0 && d.rng.Intn(3) == 0 {
		i := d.rng.Intn(len(d.live))
		w := d.live[i]
		d.live[i] = d.live[len(d.live)-1]
		d.live = d.live[:len(d.live)-1]
		d.Mem.Remove(w.Time)
		delta.Removed = []*wm.WME{w}
	} else {
		tmpl, fields := gen(d.rng)
		w, err := d.Mem.Insert(tmpl, fields)
		if err != nil {
			panic(fmt.Sprintf("matchtest: bad generator fact: %v", err))
		}
		d.live = append(d.live, w)
		delta.Added = []*wm.WME{w}
	}
	for _, m := range d.Matchers {
		m.Apply(delta)
	}
	return delta
}

// Generators produce random facts per program, small domains chosen so
// joins, negations and removals all trigger frequently.
var Generators = map[string]func(r *rand.Rand) (string, map[string]wm.Value){
	"two-way-join": func(r *rand.Rand) (string, map[string]wm.Value) {
		if r.Intn(2) == 0 {
			status := wm.Sym("free")
			if r.Intn(4) == 0 {
				status = wm.Sym("held")
			}
			return "pool", map[string]wm.Value{
				"id":     wm.Int(int64(r.Intn(5))),
				"amount": wm.Int(int64(r.Intn(100))),
				"status": status,
			}
		}
		lo := int64(r.Intn(60))
		filled := wm.Sym("no")
		if r.Intn(4) == 0 {
			filled = wm.Sym("yes")
		}
		return "order", map[string]wm.Value{
			"id":     wm.Int(int64(r.Intn(5))),
			"lo":     wm.Int(lo),
			"hi":     wm.Int(lo + int64(r.Intn(60))),
			"filled": filled,
		}
	},
	"three-way-chain": func(r *rand.Rand) (string, map[string]wm.Value) {
		return "node", map[string]wm.Value{
			"id":   wm.Int(int64(r.Intn(6))),
			"next": wm.Int(int64(r.Intn(6))),
		}
	},
	"self-join-same-template": func(r *rand.Rand) (string, map[string]wm.Value) {
		return "item", map[string]wm.Value{
			"id":    wm.Int(int64(r.Intn(8))),
			"group": wm.Sym(string(rune('a' + r.Intn(3)))),
		}
	},
	"negation": func(r *rand.Rand) (string, map[string]wm.Value) {
		if r.Intn(2) == 0 {
			state := wm.Sym("ready")
			if r.Intn(3) == 0 {
				state = wm.Sym("done")
			}
			return "task", map[string]wm.Value{"id": wm.Int(int64(r.Intn(5))), "state": state}
		}
		return "lock", map[string]wm.Value{"id": wm.Int(int64(r.Intn(5)))}
	},
	"negation-first": func(r *rand.Rand) (string, map[string]wm.Value) {
		if r.Intn(3) == 0 {
			on := wm.Sym("yes")
			if r.Intn(2) == 0 {
				on = wm.Sym("no")
			}
			return "guard", map[string]wm.Value{"on": on}
		}
		return "job", map[string]wm.Value{"id": wm.Int(int64(r.Intn(6)))}
	},
	"double-negation": func(r *rand.Rand) (string, map[string]wm.Value) {
		tmpl := []string{"a", "b", "c"}[r.Intn(3)]
		return tmpl, map[string]wm.Value{"id": wm.Int(int64(r.Intn(5)))}
	},
	"intra-element": func(r *rand.Rand) (string, map[string]wm.Value) {
		return "pairx", map[string]wm.Value{
			"l": wm.Int(int64(r.Intn(3))),
			"r": wm.Int(int64(r.Intn(3))),
		}
	},
	"pred-consts": func(r *rand.Rand) (string, map[string]wm.Value) {
		return "m", map[string]wm.Value{
			"v": wm.Int(int64(r.Intn(10))),
			"w": wm.Int(int64(r.Intn(10))),
		}
	},
	"disjunction": func(r *rand.Rand) (string, map[string]wm.Value) {
		suits := []string{"hearts", "diamonds", "clubs", "spades", "jokers"}
		return "card", map[string]wm.Value{
			"suit": wm.Sym(suits[r.Intn(len(suits))]),
			"rank": wm.Int(int64(r.Intn(4))),
		}
	},
}

// naiveConflictSet computes the ground-truth conflict set of a program
// over a memory snapshot by brute-force enumeration.
func naiveConflictSet(prog *compile.Program, mem *wm.Memory) map[string]bool {
	out := make(map[string]bool)
	snap := mem.Snapshot()
	for _, rule := range prog.Rules {
		vec := make([]*wm.WME, rule.NumPositive)
		var walk func(ceIdx int) // emits into out
		walk = func(ceIdx int) {
			if ceIdx == len(rule.CEs) {
				out[match.NewInstantiation(rule, append([]*wm.WME(nil), vec...)).KeyString()] = true
				return
			}
			ce := rule.CEs[ceIdx]
			if ce.Negated {
				for _, w := range snap {
					if ce.MatchesAlpha(w) && negOK(ce, w, vec) {
						return
					}
				}
				walk(ceIdx + 1)
				return
			}
			for _, w := range snap {
				if !ce.MatchesAlpha(w) {
					continue
				}
				ok := true
				for _, jt := range ce.JoinTests {
					if !jt.Op.Apply(w.Fields[jt.Field], vec[jt.OtherCE].Fields[jt.OtherField]) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				vec[ce.PosIndex] = w
				// The oracle deliberately stays on the tree-walking
				// interpreter, so conformance runs compare the matchers'
				// bytecode path against an independent backend.
				if match.EvalFilters(ce, vec[:ce.PosIndex+1], compile.EvalInterp) {
					walk(ceIdx + 1)
				}
				vec[ce.PosIndex] = nil
			}
		}
		walk(0)
	}
	return out
}

func negOK(ce *compile.CondElem, w *wm.WME, vec []*wm.WME) bool {
	for _, jt := range ce.JoinTests {
		if !jt.Op.Apply(w.Fields[jt.Field], vec[jt.OtherCE].Fields[jt.OtherField]) {
			return false
		}
	}
	return true
}

// RunConformance drives a single matcher implementation through random
// histories of every program and checks it against the brute-force ground
// truth after every step.
func RunConformance(t *testing.T, factory match.Factory) {
	for name := range Programs {
		name := name
		t.Run(name, func(t *testing.T) {
			prog := Compiled(t, name)
			gen := Generators[name]
			for seed := int64(1); seed <= 5; seed++ {
				d := NewDriver(prog, seed, factory)
				for step := 0; step < 120; step++ {
					d.Step(gen)
					got := Keys(d.Matchers[0].ConflictSet())
					want := naiveConflictSet(prog, d.Mem)
					if len(got) != len(want) {
						t.Fatalf("seed %d step %d: conflict set size %d, ground truth %d\ngot: %v",
							seed, step, len(got), len(want), got)
					}
					for _, k := range got {
						if !want[k] {
							t.Fatalf("seed %d step %d: spurious instantiation %s", seed, step, k)
						}
					}
				}
			}
		})
	}
}

// RunDifferential drives two matcher implementations with identical
// histories and requires identical conflict sets after every step.
func RunDifferential(t *testing.T, fa, fb match.Factory) {
	for name := range Programs {
		name := name
		t.Run(name, func(t *testing.T) {
			prog := Compiled(t, name)
			gen := Generators[name]
			for seed := int64(1); seed <= 8; seed++ {
				d := NewDriver(prog, seed, fa, fb)
				for step := 0; step < 150; step++ {
					d.Step(gen)
					ka := Keys(d.Matchers[0].ConflictSet())
					kb := Keys(d.Matchers[1].ConflictSet())
					if len(ka) != len(kb) {
						t.Fatalf("seed %d step %d: matcher A has %d instantiations, B has %d\nA: %v\nB: %v",
							seed, step, len(ka), len(kb), ka, kb)
					}
					for i := range ka {
						if ka[i] != kb[i] {
							t.Fatalf("seed %d step %d: conflict sets differ at %d: %s vs %s",
								seed, step, i, ka[i], kb[i])
						}
					}
				}
			}
		})
	}
}
