package matchtest

import (
	"testing"

	"parulel/internal/match"
	"parulel/internal/match/rete"
	"parulel/internal/match/treat"
	"parulel/internal/wm"
)

// TestNoStateLeakAfterFullRetraction inserts a random history and then
// removes every live WME; both matchers must return to an empty state
// (no leaked alpha items, beta tokens, or instantiations).
func TestNoStateLeakAfterFullRetraction(t *testing.T) {
	factories := []struct {
		name string
		f    match.Factory
	}{{"rete", rete.New}, {"treat", treat.New}}
	for name := range Programs {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, fac := range factories {
				prog := Compiled(t, name)
				gen := Generators[name]
				for seed := int64(1); seed <= 3; seed++ {
					d := NewDriver(prog, seed, fac.f)
					for step := 0; step < 80; step++ {
						d.Step(gen)
					}
					// Retract everything still alive.
					for _, w := range d.Mem.Snapshot() {
						d.Mem.Remove(w.Time)
						for _, m := range d.Matchers {
							m.Apply(wm.Delta{Removed: []*wm.WME{w}})
						}
					}
					ms := d.Matchers[0].MemStats()
					if ms.AlphaItems != 0 || ms.ConflictSet != 0 {
						t.Fatalf("%s seed %d: leaked state after full retraction: %+v", fac.name, seed, ms)
					}
					if cs := d.Matchers[0].ConflictSet(); len(cs) != 0 {
						t.Fatalf("%s seed %d: conflict set not empty: %v", fac.name, seed, cs)
					}
					// RETE keeps only the per-rule dummy tokens plus
					// negative-node tokens derived from them; those are
					// bounded by the network shape, not the history.
					if fac.name == "rete" && ms.BetaTokens > 4*len(prog.Rules)+8 {
						t.Fatalf("rete seed %d: suspicious beta token count %d after retraction", seed, ms.BetaTokens)
					}
				}
			}
		})
	}
}

// TestRebuildEquivalence: after an arbitrary history, a freshly built
// matcher fed the current WM snapshot must agree with the incrementally
// maintained one — i.e. incremental maintenance loses nothing.
func TestRebuildEquivalence(t *testing.T) {
	factories := []struct {
		name string
		f    match.Factory
	}{{"rete", rete.New}, {"treat", treat.New}}
	for name := range Programs {
		name := name
		t.Run(name, func(t *testing.T) {
			for _, fac := range factories {
				prog := Compiled(t, name)
				gen := Generators[name]
				d := NewDriver(prog, 42, fac.f)
				for step := 0; step < 150; step++ {
					d.Step(gen)
				}
				fresh := fac.f(prog.Rules)
				fresh.Apply(wm.Delta{Added: d.Mem.Snapshot()})
				a := Keys(d.Matchers[0].ConflictSet())
				b := Keys(fresh.ConflictSet())
				if len(a) != len(b) {
					t.Fatalf("%s: incremental %d vs rebuilt %d instantiations", fac.name, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s: mismatch at %d: %s vs %s", fac.name, i, a[i], b[i])
					}
				}
			}
		})
	}
}
