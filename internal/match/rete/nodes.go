// Package rete implements an incremental RETE match network in the style
// of Doorenbos ("Production Matching for Large Learning Systems", CMU,
// 1995): a constant-test alpha layer feeding alpha memories, and a beta
// layer of join nodes, beta memories and negative nodes per rule, ending in
// production nodes that maintain the conflict set.
//
// Join and negative nodes with at least one equality join test are
// hash-indexed (Doorenbos' "memory indexing"): the alpha memory keeps a
// per-field value index and the parent beta memory (or the negative node's
// own token memory) an index on the corresponding token binding, so each
// activation probes one bucket instead of scanning the whole opposite
// memory. Nodes without an equality test keep the nested-loop path, and
// Options.DisableJoinIndex forces it everywhere for ablation measurements.
//
// Each Network instance owns a partition of rules and is used by exactly
// one goroutine; the PARULEL engine achieves match parallelism by running
// one Network per worker over disjoint rule partitions (production-level
// parallelism).
package rete

import (
	"parulel/internal/compile"
	"parulel/internal/match"
	"parulel/internal/wm"
)

// token is a partial match: a chain of WMEs, one per positive CE joined so
// far. Tokens propagated by negative nodes carry a nil wme (they assert
// the *absence* of a match and add no element to the vector).
type token struct {
	parent   *token
	wme      *wm.WME // nil for the dummy top token and for negative-node children
	owner    node    // the node whose memory holds this token
	children []*token
	// vec is the positive-CE WME vector accumulated so far (shared prefix
	// copies; small and short-lived).
	vec []*wm.WME
	// nresults, for tokens held in a negative node's memory, counts WMEs
	// currently matching the negated pattern; the token's children exist
	// iff nresults == 0.
	nresults int
	// dead marks tokens already deleted, so stale entries in the per-WME
	// indexes are skipped when consumed.
	dead bool
}

func (t *token) addChild(c *token) { t.children = append(t.children, c) }
func (t *token) dropChild(c *token) {
	for i, x := range t.children {
		if x == c {
			last := len(t.children) - 1
			t.children[i] = t.children[last]
			t.children = t.children[:last]
			return
		}
	}
}

// node is a beta-layer node that can receive tokens from above and WME
// (right) activations from an alpha memory.
type node interface {
	// leftActivate receives a new token from the parent node.
	leftActivate(t *token)
	// removeToken removes a token from this node's memory (cascade
	// deletion has already handled its children).
	removeToken(t *token)
	// profOf returns the owning rule's profile. Beta-layer nodes are
	// private to one rule's chain, so the mapping is total.
	profOf() *ruleProf
}

// rightNode additionally receives alpha-memory activations.
type rightNode interface {
	node
	rightAdd(w *wm.WME)
	rightRemove(w *wm.WME)
}

// wmeSet is one hash-index bucket of an alpha memory.
type wmeSet = map[*wm.WME]struct{}

// tokenSet is one hash-index bucket of a beta/negative memory.
type tokenSet = map[*token]struct{}

// alphaMem is an alpha memory: the set of WMEs passing one CE's constant
// and intra-element tests. Alpha memories are shared between structurally
// identical CEs of the partition's rules.
type alphaMem struct {
	// rep is a representative CE carrying the alpha tests.
	rep   *compile.CondElem
	wmes  wmeSet
	succs []rightNode
	// byField holds one value index per field some attached node
	// equality-joins on: byField[f][v] is the subset of wmes whose field f
	// equals v. Registered at build time, maintained on every add/remove.
	byField map[int]map[wm.Value]wmeSet
}

// indexField registers (or returns the existing) value index over field f,
// backfilling it from the current memory contents.
func (am *alphaMem) indexField(f int) map[wm.Value]wmeSet {
	if idx, ok := am.byField[f]; ok {
		return idx
	}
	if am.byField == nil {
		am.byField = make(map[int]map[wm.Value]wmeSet)
	}
	idx := make(map[wm.Value]wmeSet)
	for w := range am.wmes {
		addWMEBucket(idx, w.Fields[f], w)
	}
	am.byField[f] = idx
	return idx
}

func (am *alphaMem) add(w *wm.WME) {
	am.wmes[w] = struct{}{}
	for f, idx := range am.byField {
		addWMEBucket(idx, w.Fields[f], w)
	}
}

func (am *alphaMem) remove(w *wm.WME) {
	delete(am.wmes, w)
	for f, idx := range am.byField {
		dropWMEBucket(idx, w.Fields[f], w)
	}
}

func addWMEBucket(idx map[wm.Value]wmeSet, v wm.Value, w *wm.WME) {
	b := idx[v]
	if b == nil {
		b = make(wmeSet)
		idx[v] = b
	}
	b[w] = struct{}{}
}

func dropWMEBucket(idx map[wm.Value]wmeSet, v wm.Value, w *wm.WME) {
	if b := idx[v]; b != nil {
		delete(b, w)
		if len(b) == 0 {
			delete(idx, v)
		}
	}
}

// betaKey identifies a beta-memory index: the binding at (positive CE,
// field) of each stored token's vector.
type betaKey struct{ ce, field int }

// betaMem stores tokens and forwards them to its child nodes.
type betaMem struct {
	net    *Network
	tokens tokenSet
	succs  []node
	// byVal holds one value index per (ce, field) binding some successor
	// join node equality-tests against.
	byVal map[betaKey]map[wm.Value]tokenSet
	prof  *ruleProf
}

func (b *betaMem) profOf() *ruleProf { return b.prof }

// indexOn registers (or returns the existing) token index on the binding
// at (ce, field), backfilling from current contents.
func (b *betaMem) indexOn(ce, field int) map[wm.Value]tokenSet {
	k := betaKey{ce, field}
	if idx, ok := b.byVal[k]; ok {
		return idx
	}
	if b.byVal == nil {
		b.byVal = make(map[betaKey]map[wm.Value]tokenSet)
	}
	idx := make(map[wm.Value]tokenSet)
	for t := range b.tokens {
		addTokenBucket(idx, t.vec[ce].Fields[field], t)
	}
	b.byVal[k] = idx
	return idx
}

func (b *betaMem) leftActivate(t *token) {
	t.owner = b
	b.tokens[t] = struct{}{}
	for k, idx := range b.byVal {
		addTokenBucket(idx, t.vec[k.ce].Fields[k.field], t)
	}
	for _, s := range b.succs {
		s.leftActivate(t)
	}
}

func (b *betaMem) removeToken(t *token) {
	delete(b.tokens, t)
	for k, idx := range b.byVal {
		dropTokenBucket(idx, t.vec[k.ce].Fields[k.field], t)
	}
}

func addTokenBucket(idx map[wm.Value]tokenSet, v wm.Value, t *token) {
	b := idx[v]
	if b == nil {
		b = make(tokenSet)
		idx[v] = b
	}
	b[t] = struct{}{}
}

func dropTokenBucket(idx map[wm.Value]tokenSet, v wm.Value, t *token) {
	if b := idx[v]; b != nil {
		delete(b, t)
		if len(b) == 0 {
			delete(idx, v)
		}
	}
}

// joinNode joins tokens from its parent beta memory with WMEs from its
// alpha memory, applying the CE's variable-consistency tests and any
// attached filter expressions. When the CE has an equality join test the
// node probes hash indexes on both memories instead of scanning them.
type joinNode struct {
	net    *Network
	parent *betaMem
	amem   *alphaMem
	ce     *compile.CondElem
	child  node // betaMem, negativeNode or productionNode
	// eqTest is the index within ce.JoinTests of the equality test the
	// hash indexes are built on, or -1 for the nested-loop path.
	eqTest int
	// alphaIdx / betaIdx are the probe indexes when eqTest >= 0: the alpha
	// memory's WMEs by the tested field, and the parent beta memory's
	// tokens by the joined binding.
	alphaIdx map[wm.Value]wmeSet
	betaIdx  map[wm.Value]tokenSet
	// scratch is a reused WME vector for filter evaluation; the vector
	// handed to EvalFilters never escapes it.
	scratch []*wm.WME
	prof    *ruleProf
}

func (j *joinNode) profOf() *ruleProf { return j.prof }

// passes applies the CE's join tests and filters to a candidate pair. The
// equality test the hash indexes are built on (eqTest) is skipped: both
// activation paths reach passes only through an index probe on exactly
// that test's value, and map-key equality coincides with OpEq.
func (j *joinNode) passes(t *token, w *wm.WME) bool {
	j.prof.probes++
	for i, jt := range j.ce.JoinTests {
		if i == j.eqTest {
			continue
		}
		if !jt.Op.Apply(w.Fields[jt.Field], t.vec[jt.OtherCE].Fields[jt.OtherField]) {
			return false
		}
	}
	if len(j.ce.Filters) > 0 {
		// Filters need the vector including this WME; reuse the node's
		// scratch buffer rather than allocating per candidate.
		j.scratch = append(append(j.scratch[:0], t.vec...), w)
		return match.EvalFilters(j.ce, j.scratch, j.net.opts.EvalMode)
	}
	return true
}

func (j *joinNode) propagate(t *token, w *wm.WME) {
	j.prof.tokens++
	vec := append(append(make([]*wm.WME, 0, len(t.vec)+1), t.vec...), w)
	nt := &token{parent: t, wme: w, vec: vec}
	t.addChild(nt)
	j.net.wmeTokens[w] = append(j.net.wmeTokens[w], nt)
	j.child.leftActivate(nt)
}

func (j *joinNode) leftActivate(t *token) {
	if j.eqTest >= 0 {
		jt := &j.ce.JoinTests[j.eqTest]
		for w := range j.alphaIdx[t.vec[jt.OtherCE].Fields[jt.OtherField]] {
			if j.passes(t, w) {
				j.propagate(t, w)
			}
		}
		return
	}
	for w := range j.amem.wmes {
		if j.passes(t, w) {
			j.propagate(t, w)
		}
	}
}

func (j *joinNode) removeToken(*token) {
	// Join nodes hold no memory; nothing to do. (Tokens are held by beta
	// memories, negative nodes and production nodes.)
}

func (j *joinNode) rightAdd(w *wm.WME) {
	if j.eqTest >= 0 {
		jt := &j.ce.JoinTests[j.eqTest]
		for t := range j.betaIdx[w.Fields[jt.Field]] {
			if j.passes(t, w) {
				j.propagate(t, w)
			}
		}
		return
	}
	for t := range j.parent.tokens {
		if j.passes(t, w) {
			j.propagate(t, w)
		}
	}
}

func (j *joinNode) rightRemove(*wm.WME) {
	// Token deletion is driven by the network's wmeTokens index; join
	// nodes need no right-removal work of their own.
}

// negativeNode implements negated condition elements. It stores the tokens
// flowing through it; a token's children exist exactly while no WME in the
// alpha memory matches it. Join results are tracked per (token, wme) pair
// via the network's wmeNegResults index. Like join nodes, a negative node
// with an equality join test probes a value index over the alpha memory
// and keeps its own tokens indexed by the joined binding.
type negativeNode struct {
	net    *Network
	amem   *alphaMem
	ce     *compile.CondElem
	tokens tokenSet
	child  node
	// eqTest / alphaIdx mirror joinNode's hash-join state; tokensByVal
	// indexes this node's own token memory by the joined binding.
	eqTest      int
	alphaIdx    map[wm.Value]wmeSet
	tokensByVal map[wm.Value]tokenSet
	prof        *ruleProf
}

func (n *negativeNode) profOf() *ruleProf { return n.prof }

type negJoinResult struct {
	owner *token
	wme   *wm.WME
	node  *negativeNode
}

// passes applies the negated CE's join tests, skipping the indexed
// equality test (see joinNode.passes).
func (n *negativeNode) passes(t *token, w *wm.WME) bool {
	n.prof.probes++
	for i, jt := range n.ce.JoinTests {
		if i == n.eqTest {
			continue
		}
		if !jt.Op.Apply(w.Fields[jt.Field], t.vec[jt.OtherCE].Fields[jt.OtherField]) {
			return false
		}
	}
	return true
}

func (n *negativeNode) propagate(t *token) {
	nt := &token{parent: t, wme: nil, vec: t.vec}
	t.addChild(nt)
	n.child.leftActivate(nt)
}

// probeValue is the token-side binding of the indexed equality test.
func (n *negativeNode) probeValue(t *token) wm.Value {
	jt := &n.ce.JoinTests[n.eqTest]
	return t.vec[jt.OtherCE].Fields[jt.OtherField]
}

func (n *negativeNode) leftActivate(t *token) {
	// Create this node's own token rather than adopting the incoming one:
	// the incoming token may already be owned by a beta memory, and a
	// token must live in exactly one node's memory for deletion to be
	// complete.
	n.prof.tokens++
	nt := &token{parent: t, vec: t.vec, owner: n}
	t.addChild(nt)
	n.tokens[nt] = struct{}{}
	if n.eqTest >= 0 {
		v := n.probeValue(nt)
		addTokenBucket(n.tokensByVal, v, nt)
		for w := range n.alphaIdx[v] {
			if n.passes(nt, w) {
				nt.nresults++
				jr := &negJoinResult{owner: nt, wme: w, node: n}
				n.net.wmeNegResults[w] = append(n.net.wmeNegResults[w], jr)
			}
		}
	} else {
		for w := range n.amem.wmes {
			if n.passes(nt, w) {
				nt.nresults++
				jr := &negJoinResult{owner: nt, wme: w, node: n}
				n.net.wmeNegResults[w] = append(n.net.wmeNegResults[w], jr)
			}
		}
	}
	if nt.nresults == 0 {
		n.propagate(nt)
	}
}

func (n *negativeNode) removeToken(t *token) {
	delete(n.tokens, t)
	if n.eqTest >= 0 {
		dropTokenBucket(n.tokensByVal, n.probeValue(t), t)
	}
	// This token's join results stay in the per-WME index; they are
	// filtered out via the dead flag when consumed (Network.removeWME).
}

func (n *negativeNode) blockToken(t *token, w *wm.WME) {
	if t.nresults == 0 {
		// Absence no longer holds: retract descendants.
		n.net.deleteDescendants(t)
	}
	t.nresults++
	jr := &negJoinResult{owner: t, wme: w, node: n}
	n.net.wmeNegResults[w] = append(n.net.wmeNegResults[w], jr)
}

func (n *negativeNode) rightAdd(w *wm.WME) {
	if n.eqTest >= 0 {
		jt := &n.ce.JoinTests[n.eqTest]
		for t := range n.tokensByVal[w.Fields[jt.Field]] {
			if n.passes(t, w) {
				n.blockToken(t, w)
			}
		}
		return
	}
	for t := range n.tokens {
		if n.passes(t, w) {
			n.blockToken(t, w)
		}
	}
}

func (n *negativeNode) rightRemove(*wm.WME) {
	// Handled centrally via wmeNegResults in Network.removeWME.
}

// productionNode terminates a rule's chain and maintains its
// instantiations.
type productionNode struct {
	net  *Network
	rule *compile.Rule
	// insts maps tokens to their instantiations for O(1) retraction.
	insts map[*token]*match.Instantiation
	prof  *ruleProf
}

func (p *productionNode) profOf() *ruleProf { return p.prof }

func (p *productionNode) leftActivate(t *token) {
	p.prof.insts++
	t.owner = p
	in := match.NewInstantiation(p.rule, t.vec)
	p.insts[t] = in
	p.net.conflictSet[in.Key()] = in
	p.net.coll.Add(in)
}

func (p *productionNode) removeToken(t *token) {
	in, ok := p.insts[t]
	if !ok {
		return
	}
	delete(p.insts, t)
	delete(p.net.conflictSet, in.Key())
	p.net.coll.Remove(in)
}
