// Package rete implements an incremental RETE match network in the style
// of Doorenbos ("Production Matching for Large Learning Systems", CMU,
// 1995): a constant-test alpha layer feeding alpha memories, and a beta
// layer of join nodes, beta memories and negative nodes per rule, ending in
// production nodes that maintain the conflict set.
//
// Each Network instance owns a partition of rules and is used by exactly
// one goroutine; the PARULEL engine achieves match parallelism by running
// one Network per worker over disjoint rule partitions (production-level
// parallelism).
package rete

import (
	"parulel/internal/compile"
	"parulel/internal/match"
	"parulel/internal/wm"
)

// token is a partial match: a chain of WMEs, one per positive CE joined so
// far. Tokens propagated by negative nodes carry a nil wme (they assert
// the *absence* of a match and add no element to the vector).
type token struct {
	parent   *token
	wme      *wm.WME // nil for the dummy top token and for negative-node children
	owner    node    // the node whose memory holds this token
	children []*token
	// vec is the positive-CE WME vector accumulated so far (shared prefix
	// copies; small and short-lived).
	vec []*wm.WME
	// nresults, for tokens held in a negative node's memory, counts WMEs
	// currently matching the negated pattern; the token's children exist
	// iff nresults == 0.
	nresults int
	// dead marks tokens already deleted, so stale entries in the per-WME
	// indexes are skipped when consumed.
	dead bool
}

func (t *token) addChild(c *token) { t.children = append(t.children, c) }
func (t *token) dropChild(c *token) {
	for i, x := range t.children {
		if x == c {
			last := len(t.children) - 1
			t.children[i] = t.children[last]
			t.children = t.children[:last]
			return
		}
	}
}

// node is a beta-layer node that can receive tokens from above and WME
// (right) activations from an alpha memory.
type node interface {
	// leftActivate receives a new token from the parent node.
	leftActivate(t *token)
	// removeToken removes a token from this node's memory (cascade
	// deletion has already handled its children).
	removeToken(t *token)
}

// rightNode additionally receives alpha-memory activations.
type rightNode interface {
	node
	rightAdd(w *wm.WME)
	rightRemove(w *wm.WME)
}

// alphaMem is an alpha memory: the set of WMEs passing one CE's constant
// and intra-element tests. Alpha memories are shared between structurally
// identical CEs of the partition's rules.
type alphaMem struct {
	// rep is a representative CE carrying the alpha tests.
	rep   *compile.CondElem
	wmes  map[*wm.WME]struct{}
	succs []rightNode
}

// betaMem stores tokens and forwards them to its child nodes.
type betaMem struct {
	net    *Network
	tokens map[*token]struct{}
	succs  []node
}

func (b *betaMem) leftActivate(t *token) {
	t.owner = b
	b.tokens[t] = struct{}{}
	for _, s := range b.succs {
		s.leftActivate(t)
	}
}

func (b *betaMem) removeToken(t *token) { delete(b.tokens, t) }

// joinNode joins tokens from its parent beta memory with WMEs from its
// alpha memory, applying the CE's variable-consistency tests and any
// attached filter expressions.
type joinNode struct {
	net    *Network
	parent *betaMem
	amem   *alphaMem
	ce     *compile.CondElem
	child  node // betaMem, negativeNode or productionNode
}

func (j *joinNode) passes(t *token, w *wm.WME) bool {
	for _, jt := range j.ce.JoinTests {
		if !jt.Op.Apply(w.Fields[jt.Field], t.vec[jt.OtherCE].Fields[jt.OtherField]) {
			return false
		}
	}
	if len(j.ce.Filters) > 0 {
		// Filters need the vector including this WME.
		vec := append(append(make([]*wm.WME, 0, len(t.vec)+1), t.vec...), w)
		return match.EvalFilters(j.ce, vec)
	}
	return true
}

func (j *joinNode) propagate(t *token, w *wm.WME) {
	vec := append(append(make([]*wm.WME, 0, len(t.vec)+1), t.vec...), w)
	nt := &token{parent: t, wme: w, vec: vec}
	t.addChild(nt)
	j.net.wmeTokens[w] = append(j.net.wmeTokens[w], nt)
	j.child.leftActivate(nt)
}

func (j *joinNode) leftActivate(t *token) {
	for w := range j.amem.wmes {
		if j.passes(t, w) {
			j.propagate(t, w)
		}
	}
}

func (j *joinNode) removeToken(*token) {
	// Join nodes hold no memory; nothing to do. (Tokens are held by beta
	// memories, negative nodes and production nodes.)
}

func (j *joinNode) rightAdd(w *wm.WME) {
	for t := range j.parent.tokens {
		if j.passes(t, w) {
			j.propagate(t, w)
		}
	}
}

func (j *joinNode) rightRemove(*wm.WME) {
	// Token deletion is driven by the network's wmeTokens index; join
	// nodes need no right-removal work of their own.
}

// negativeNode implements negated condition elements. It stores the tokens
// flowing through it; a token's children exist exactly while no WME in the
// alpha memory matches it. Join results are tracked per (token, wme) pair
// via the network's wmeNegResults index.
type negativeNode struct {
	net    *Network
	amem   *alphaMem
	ce     *compile.CondElem
	tokens map[*token]struct{}
	child  node
}

type negJoinResult struct {
	owner *token
	wme   *wm.WME
	node  *negativeNode
}

func (n *negativeNode) passes(t *token, w *wm.WME) bool {
	for _, jt := range n.ce.JoinTests {
		if !jt.Op.Apply(w.Fields[jt.Field], t.vec[jt.OtherCE].Fields[jt.OtherField]) {
			return false
		}
	}
	return true
}

func (n *negativeNode) propagate(t *token) {
	nt := &token{parent: t, wme: nil, vec: t.vec}
	t.addChild(nt)
	n.child.leftActivate(nt)
}

func (n *negativeNode) leftActivate(t *token) {
	// Create this node's own token rather than adopting the incoming one:
	// the incoming token may already be owned by a beta memory, and a
	// token must live in exactly one node's memory for deletion to be
	// complete.
	nt := &token{parent: t, vec: t.vec, owner: n}
	t.addChild(nt)
	n.tokens[nt] = struct{}{}
	for w := range n.amem.wmes {
		if n.passes(nt, w) {
			nt.nresults++
			jr := &negJoinResult{owner: nt, wme: w, node: n}
			n.net.wmeNegResults[w] = append(n.net.wmeNegResults[w], jr)
		}
	}
	if nt.nresults == 0 {
		n.propagate(nt)
	}
}

func (n *negativeNode) removeToken(t *token) {
	delete(n.tokens, t)
	// This token's join results stay in the per-WME index; they are
	// filtered out via the dead flag when consumed (Network.removeWME).
}

func (n *negativeNode) rightAdd(w *wm.WME) {
	for t := range n.tokens {
		if n.passes(t, w) {
			if t.nresults == 0 {
				// Absence no longer holds: retract descendants.
				n.net.deleteDescendants(t)
			}
			t.nresults++
			jr := &negJoinResult{owner: t, wme: w, node: n}
			n.net.wmeNegResults[w] = append(n.net.wmeNegResults[w], jr)
		}
	}
}

func (n *negativeNode) rightRemove(*wm.WME) {
	// Handled centrally via wmeNegResults in Network.removeWME.
}

// productionNode terminates a rule's chain and maintains its
// instantiations.
type productionNode struct {
	net  *Network
	rule *compile.Rule
	// insts maps tokens to their instantiations for O(1) retraction.
	insts map[*token]*match.Instantiation
}

func (p *productionNode) leftActivate(t *token) {
	t.owner = p
	in := match.NewInstantiation(p.rule, t.vec)
	p.insts[t] = in
	p.net.conflictSet[in.Key()] = in
	p.net.coll.Add(in)
}

func (p *productionNode) removeToken(t *token) {
	in, ok := p.insts[t]
	if !ok {
		return
	}
	delete(p.insts, t)
	delete(p.net.conflictSet, in.Key())
	p.net.coll.Remove(in)
}
