package rete_test

import (
	"testing"

	"parulel/internal/compile"
	"parulel/internal/match"
	"parulel/internal/match/matchtest"
	"parulel/internal/match/rete"
	"parulel/internal/match/treat"
	"parulel/internal/wm"
)

func compileOK(t *testing.T, src string) *compile.Program {
	t.Helper()
	p, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func insert(t *testing.T, mem *wm.Memory, tmpl string, fields map[string]wm.Value) *wm.WME {
	t.Helper()
	w, err := mem.Insert(tmpl, fields)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestReteBasicJoin(t *testing.T) {
	prog := compileOK(t, `
(literalize pool  id amount status)
(literalize order id lo hi)
(rule propose
  (pool  ^id <p> ^amount <a> ^status free)
  (order ^id <o> ^lo <lo> ^hi <hi>)
  (test (and (>= <a> <lo>) (<= <a> <hi>)))
-->
  (halt))
`)
	n := rete.New(prog.Rules)
	mem := wm.NewMemory(prog.Schema)

	p1 := insert(t, mem, "pool", map[string]wm.Value{"id": wm.Int(1), "amount": wm.Int(100), "status": wm.Sym("free")})
	ch := n.Apply(wm.Delta{Added: []*wm.WME{p1}})
	if len(ch.Added) != 0 {
		t.Fatalf("no instantiation expected yet: %v", ch.Added)
	}

	o1 := insert(t, mem, "order", map[string]wm.Value{"id": wm.Int(9), "lo": wm.Int(50), "hi": wm.Int(150)})
	ch = n.Apply(wm.Delta{Added: []*wm.WME{o1}})
	if len(ch.Added) != 1 {
		t.Fatalf("expected 1 instantiation, got %d", len(ch.Added))
	}
	in := ch.Added[0]
	if in.Rule.Name != "propose" || in.WMEs[0] != p1 || in.WMEs[1] != o1 {
		t.Fatalf("wrong instantiation: %v", in)
	}

	// An order out of range must not match.
	o2 := insert(t, mem, "order", map[string]wm.Value{"id": wm.Int(10), "lo": wm.Int(150), "hi": wm.Int(200)})
	ch = n.Apply(wm.Delta{Added: []*wm.WME{o2}})
	if len(ch.Added) != 0 {
		t.Fatalf("filter should reject out-of-range order: %v", ch.Added)
	}

	// Removing the pool retracts the instantiation.
	mem.Remove(p1.Time)
	ch = n.Apply(wm.Delta{Removed: []*wm.WME{p1}})
	if len(ch.Removed) != 1 || ch.Removed[0].Key() != in.Key() {
		t.Fatalf("expected retraction of %s, got %v", in.KeyString(), ch.Removed)
	}
	if cs := n.ConflictSet(); len(cs) != 0 {
		t.Fatalf("conflict set should be empty: %v", cs)
	}
}

func TestReteNegationLifecycle(t *testing.T) {
	prog := compileOK(t, `
(literalize task id state)
(literalize lock id)
(rule runnable
  (task ^id <t> ^state ready)
  - (lock ^id <t>)
-->
  (halt))
`)
	n := rete.New(prog.Rules)
	mem := wm.NewMemory(prog.Schema)

	task := insert(t, mem, "task", map[string]wm.Value{"id": wm.Int(1), "state": wm.Sym("ready")})
	ch := n.Apply(wm.Delta{Added: []*wm.WME{task}})
	if len(ch.Added) != 1 {
		t.Fatalf("unlocked task should match: %+v", ch)
	}

	lock := insert(t, mem, "lock", map[string]wm.Value{"id": wm.Int(1)})
	ch = n.Apply(wm.Delta{Added: []*wm.WME{lock}})
	if len(ch.Removed) != 1 {
		t.Fatalf("adding lock should retract: %+v", ch)
	}
	if cs := n.ConflictSet(); len(cs) != 0 {
		t.Fatalf("conflict set should be empty: %v", cs)
	}

	// A lock for a different task must not block.
	lock2 := insert(t, mem, "lock", map[string]wm.Value{"id": wm.Int(2)})
	ch = n.Apply(wm.Delta{Added: []*wm.WME{lock2}})
	if len(ch.Added)+len(ch.Removed) != 0 {
		t.Fatalf("unrelated lock changed conflict set: %+v", ch)
	}

	mem.Remove(lock.Time)
	ch = n.Apply(wm.Delta{Removed: []*wm.WME{lock}})
	if len(ch.Added) != 1 {
		t.Fatalf("removing lock should re-derive: %+v", ch)
	}
}

func TestReteNegationBeforePositive(t *testing.T) {
	prog := compileOK(t, `
(literalize guard on)
(literalize job id)
(rule unguarded
  - (guard ^on yes)
  (job ^id <j>)
-->
  (halt))
`)
	n := rete.New(prog.Rules)
	mem := wm.NewMemory(prog.Schema)

	job := insert(t, mem, "job", map[string]wm.Value{"id": wm.Int(1)})
	ch := n.Apply(wm.Delta{Added: []*wm.WME{job}})
	if len(ch.Added) != 1 {
		t.Fatalf("job with no guard should match: %+v", ch)
	}
	g := insert(t, mem, "guard", map[string]wm.Value{"on": wm.Sym("yes")})
	ch = n.Apply(wm.Delta{Added: []*wm.WME{g}})
	if len(ch.Removed) != 1 {
		t.Fatalf("guard should retract: %+v", ch)
	}
	job2 := insert(t, mem, "job", map[string]wm.Value{"id": wm.Int(2)})
	ch = n.Apply(wm.Delta{Added: []*wm.WME{job2}})
	if len(ch.Added) != 0 {
		t.Fatalf("guarded job should not match: %+v", ch)
	}
	mem.Remove(g.Time)
	ch = n.Apply(wm.Delta{Removed: []*wm.WME{g}})
	if len(ch.Added) != 2 {
		t.Fatalf("unguarding should re-derive both jobs: %+v", ch)
	}
}

func TestReteSelfJoinSingleDelta(t *testing.T) {
	// One WME matching two CEs of the same rule, added in one delta with
	// others: exercises the duplicate-propagation hazard of shared alpha
	// memories.
	prog := compileOK(t, `
(literalize item id group)
(rule pair
  (item ^id <a> ^group <g>)
  (item ^id (<> <a>) ^group <g>)
-->
  (halt))
`)
	n := rete.New(prog.Rules)
	mem := wm.NewMemory(prog.Schema)
	a := insert(t, mem, "item", map[string]wm.Value{"id": wm.Int(1), "group": wm.Sym("g")})
	b := insert(t, mem, "item", map[string]wm.Value{"id": wm.Int(2), "group": wm.Sym("g")})
	ch := n.Apply(wm.Delta{Added: []*wm.WME{a, b}})
	// (a,b) and (b,a) both match; the same item in both positions does not.
	if len(ch.Added) != 2 {
		t.Fatalf("expected 2 instantiations, got %d: %v", len(ch.Added), ch.Added)
	}
	seen := map[match.Key]bool{}
	for _, in := range ch.Added {
		if seen[in.Key()] {
			t.Fatalf("duplicate instantiation %s", in.KeyString())
		}
		seen[in.Key()] = true
	}
}

func TestReteModifySequence(t *testing.T) {
	// modify = remove + add in a single delta, removals first.
	prog := compileOK(t, `
(literalize counter n)
(rule positive (counter ^n (> 0)) --> (halt))
`)
	n := rete.New(prog.Rules)
	mem := wm.NewMemory(prog.Schema)
	c0 := insert(t, mem, "counter", map[string]wm.Value{"n": wm.Int(0)})
	ch := n.Apply(wm.Delta{Added: []*wm.WME{c0}})
	if len(ch.Added) != 0 {
		t.Fatal("zero counter should not match")
	}
	mem.Remove(c0.Time)
	c1 := insert(t, mem, "counter", map[string]wm.Value{"n": wm.Int(5)})
	ch = n.Apply(wm.Delta{Removed: []*wm.WME{c0}, Added: []*wm.WME{c1}})
	if len(ch.Added) != 1 || len(ch.Removed) != 0 {
		t.Fatalf("modify to 5: %+v", ch)
	}
	mem.Remove(c1.Time)
	c2 := insert(t, mem, "counter", map[string]wm.Value{"n": wm.Int(7)})
	ch = n.Apply(wm.Delta{Removed: []*wm.WME{c1}, Added: []*wm.WME{c2}})
	if len(ch.Added) != 1 || len(ch.Removed) != 1 {
		t.Fatalf("modify 5→7 should swap instantiations: %+v", ch)
	}
}

func TestReteMemStats(t *testing.T) {
	prog := compileOK(t, matchtest.Programs["three-way-chain"])
	n := rete.New(prog.Rules)
	mem := wm.NewMemory(prog.Schema)
	for i := 0; i < 4; i++ {
		w := insert(t, mem, "node", map[string]wm.Value{"id": wm.Int(int64(i)), "next": wm.Int(int64(i + 1))})
		n.Apply(wm.Delta{Added: []*wm.WME{w}})
	}
	ms := n.MemStats()
	if ms.AlphaItems == 0 {
		t.Error("alpha items should be > 0")
	}
	if ms.BetaTokens == 0 {
		t.Error("RETE should hold beta tokens")
	}
	// chain of 4 nodes: instantiations (0,1,2),(1,2,3)
	if ms.ConflictSet != 2 {
		t.Errorf("conflict set = %d, want 2", ms.ConflictSet)
	}
}

func TestReteConformance(t *testing.T) {
	matchtest.RunConformance(t, rete.New)
}

func TestReteConformanceNoJoinIndex(t *testing.T) {
	matchtest.RunConformance(t, rete.Factory(rete.Options{DisableJoinIndex: true}))
}

func TestReteVsTreatDifferential(t *testing.T) {
	matchtest.RunDifferential(t, rete.New, treat.New)
}

func TestReteIndexedVsUnindexedDifferential(t *testing.T) {
	matchtest.RunDifferential(t, rete.New, rete.Factory(rete.Options{DisableJoinIndex: true}))
}

var _ match.Matcher = rete.New(nil)
