package rete

import (
	"fmt"
	"strings"
	"time"

	"parulel/internal/compile"
	"parulel/internal/match"
	"parulel/internal/wm"
)

// Options configures a Network.
type Options struct {
	// DisableJoinIndex turns off the hash-join indexes over alpha and beta
	// memories, forcing every join and negative node onto the nested-loop
	// path. Exists for ablation measurements (experiment E11); production
	// callers should leave it false.
	DisableJoinIndex bool
	// Profile attributes match time per rule: every top-level beta
	// activation (and token-deletion cascade) is timed and charged to the
	// owning rule's profile, at the cost of two clock reads per
	// activation. The activity counters (tokens, probes, instantiations)
	// are maintained regardless; Profile only gates the timing.
	Profile bool
	// EvalMode selects the filter-expression backend: the bytecode VM
	// (the zero value, the default) or the tree-walking interpreter
	// (compile.EvalInterp, the reference semantics and the E13 ablation
	// baseline).
	EvalMode compile.EvalMode
}

// ruleProf accumulates one rule's match-layer activity. Every beta-layer
// node of a rule's chain points at its rule's ruleProf; counters are plain
// increments on the single goroutine that owns the network.
type ruleProf struct {
	name    string
	matchNS int64
	tokens  uint64
	probes  uint64
	insts   uint64
}

// Network is a RETE network over a partition of rules. It implements
// match.Matcher. A Network must be used by a single goroutine.
type Network struct {
	rules []*compile.Rule
	opts  Options

	alphaByTmpl map[*wm.Template][]*alphaMem
	alphaBySig  map[string]*alphaMem

	// Per-WME bookkeeping (WMEs are shared across partitions, so RETE
	// state cannot live on the WME itself).
	wmeAlpha      map[*wm.WME][]*alphaMem
	wmeTokens     map[*wm.WME][]*token
	wmeNegResults map[*wm.WME][]*negJoinResult

	conflictSet map[match.Key]*match.Instantiation
	coll        *match.ChangeCollector

	betaMems []*betaMem
	negNodes []*negativeNode
	prods    []*productionNode

	// profs holds one profile per rule, in declaration order of the
	// partition. profile gates the timing attribution only.
	profs   []*ruleProf
	profile bool

	// delStack is the reused traversal stack of deleteTokenAndDescendants,
	// so deep token chains neither recurse nor reallocate per deletion.
	delStack []*token
}

var _ match.Matcher = (*Network)(nil)

// New builds a RETE network with default options for the given rules. It
// satisfies match.Factory.
func New(rules []*compile.Rule) match.Matcher { return NewWithOptions(rules, Options{}) }

// Factory returns a match.Factory that builds networks with fixed options.
func Factory(opts Options) match.Factory {
	return func(rules []*compile.Rule) match.Matcher { return NewWithOptions(rules, opts) }
}

// NewWithOptions builds a RETE network for the given rules.
func NewWithOptions(rules []*compile.Rule, opts Options) match.Matcher {
	n := &Network{
		rules:         rules,
		opts:          opts,
		alphaByTmpl:   make(map[*wm.Template][]*alphaMem),
		alphaBySig:    make(map[string]*alphaMem),
		wmeAlpha:      make(map[*wm.WME][]*alphaMem),
		wmeTokens:     make(map[*wm.WME][]*token),
		wmeNegResults: make(map[*wm.WME][]*negJoinResult),
		conflictSet:   make(map[match.Key]*match.Instantiation),
		coll:          match.NewChangeCollector(),
		profile:       opts.Profile,
	}
	for _, r := range rules {
		n.addRule(r)
	}
	return n
}

// alphaSignature identifies structurally identical alpha tests so that
// alpha memories are shared between CEs.
func alphaSignature(ce *compile.CondElem) string {
	var b strings.Builder
	b.WriteString(ce.Tmpl.Name)
	for _, t := range ce.ConstTests {
		fmt.Fprintf(&b, "|c%d %s %s %d", t.Field, t.Op, t.Val, t.Val.Kind)
	}
	for _, t := range ce.DisjTests {
		fmt.Fprintf(&b, "|d%d", t.Field)
		for _, v := range t.Vals {
			fmt.Fprintf(&b, " %s %d", v, v.Kind)
		}
	}
	for _, t := range ce.IntraTests {
		fmt.Fprintf(&b, "|i%d %s %d", t.Field, t.Op, t.OtherField)
	}
	return b.String()
}

func (n *Network) alpha(ce *compile.CondElem) *alphaMem {
	sig := alphaSignature(ce)
	if am, ok := n.alphaBySig[sig]; ok {
		return am
	}
	am := &alphaMem{rep: ce, wmes: make(wmeSet)}
	n.alphaBySig[sig] = am
	n.alphaByTmpl[ce.Tmpl] = append(n.alphaByTmpl[ce.Tmpl], am)
	return am
}

// attach registers a right node with an alpha memory. Nodes are prepended
// so that, within a rule chain, deeper nodes are right-activated first —
// the standard RETE ordering that prevents duplicate propagation when one
// WME feeds two join levels through a shared alpha memory.
func (am *alphaMem) attach(rn rightNode) {
	am.succs = append([]rightNode{rn}, am.succs...)
}

// eqJoinTest picks the equality join test the hash indexes are built on:
// the first OpEq test (strict equality — exactly map-key equality over
// wm.Value). Returns -1 when the CE has none or indexing is disabled.
func (n *Network) eqJoinTest(ce *compile.CondElem) int {
	if n.opts.DisableJoinIndex {
		return -1
	}
	for i := range ce.JoinTests {
		if ce.JoinTests[i].Op == compile.OpEq {
			return i
		}
	}
	return -1
}

// addRule builds the beta chain for one rule: a private top beta memory
// with a dummy token, then one join or negative node per condition
// element, ending in a production node.
func (n *Network) addRule(r *compile.Rule) {
	prof := &ruleProf{name: r.Name}
	n.profs = append(n.profs, prof)
	top := &betaMem{net: n, tokens: make(tokenSet), prof: prof}
	n.betaMems = append(n.betaMems, top)
	dummy := &token{vec: nil, owner: top}
	top.tokens[dummy] = struct{}{}

	cur := top
	for i, ce := range r.CEs {
		last := i == len(r.CEs)-1
		var child node
		var collector *betaMem
		if last {
			prod := &productionNode{net: n, rule: r, insts: make(map[*token]*match.Instantiation), prof: prof}
			n.prods = append(n.prods, prod)
			child = prod
		} else {
			collector = &betaMem{net: n, tokens: make(tokenSet), prof: prof}
			n.betaMems = append(n.betaMems, collector)
			child = collector
		}
		am := n.alpha(ce)
		eq := n.eqJoinTest(ce)
		if ce.Negated {
			neg := &negativeNode{
				net:    n,
				amem:   am,
				ce:     ce,
				tokens: make(tokenSet),
				child:  child,
				eqTest: eq,
				prof:   prof,
			}
			if eq >= 0 {
				jt := &ce.JoinTests[eq]
				neg.alphaIdx = am.indexField(jt.Field)
				neg.tokensByVal = make(map[wm.Value]tokenSet)
			}
			n.negNodes = append(n.negNodes, neg)
			cur.succs = append(cur.succs, neg)
			am.attach(neg)
			// Flow the existing tokens (initially just the dummy) through
			// the new node.
			for t := range cur.tokens {
				neg.leftActivate(t)
			}
		} else {
			j := &joinNode{net: n, parent: cur, amem: am, ce: ce, child: child, eqTest: eq, prof: prof}
			if eq >= 0 {
				jt := &ce.JoinTests[eq]
				j.alphaIdx = am.indexField(jt.Field)
				j.betaIdx = cur.indexOn(jt.OtherCE, jt.OtherField)
			}
			cur.succs = append(cur.succs, j)
			am.attach(j)
			for t := range cur.tokens {
				j.leftActivate(t)
			}
		}
		cur = collector
	}
}

// Apply feeds a working-memory delta and returns conflict-set changes,
// netting out instantiations that were both added and removed within the
// one delta (e.g. created by one WME and retracted by a later WME's
// negative match).
func (n *Network) Apply(delta wm.Delta) match.Changes {
	for _, w := range delta.Removed {
		n.removeWME(w)
	}
	for _, w := range delta.Added {
		n.addWME(w)
	}
	return n.coll.Take()
}

func (n *Network) addWME(w *wm.WME) {
	for _, am := range n.alphaByTmpl[w.Tmpl] {
		if !am.rep.MatchesAlpha(w) {
			continue
		}
		am.add(w)
		n.wmeAlpha[w] = append(n.wmeAlpha[w], am)
		// Each right activation cascades only through its own rule's
		// private beta chain, so timing the top-level call attributes the
		// whole subtree to that rule.
		if n.profile {
			for _, s := range am.succs {
				t0 := time.Now()
				s.rightAdd(w)
				s.profOf().matchNS += int64(time.Since(t0))
			}
		} else {
			for _, s := range am.succs {
				s.rightAdd(w)
			}
		}
	}
}

func (n *Network) removeWME(w *wm.WME) {
	// 1. Remove from alpha memories so in-flight joins no longer see it.
	for _, am := range n.wmeAlpha[w] {
		am.remove(w)
	}
	delete(n.wmeAlpha, w)

	// 2. Delete every token built on this WME, cascading to descendants.
	// A token's whole subtree lives in one rule's chain, so the deletion
	// cascade is attributable to the owner's rule.
	for _, t := range n.wmeTokens[w] {
		if n.profile && !t.dead && t.owner != nil {
			prof := t.owner.profOf()
			t0 := time.Now()
			n.deleteTokenAndDescendants(t)
			prof.matchNS += int64(time.Since(t0))
		} else {
			n.deleteTokenAndDescendants(t)
		}
	}
	delete(n.wmeTokens, w)

	// 3. Negative join results: the blocked tokens may become unblocked.
	for _, jr := range n.wmeNegResults[w] {
		if jr.owner.dead {
			continue
		}
		jr.owner.nresults--
		if jr.owner.nresults == 0 {
			if n.profile {
				t0 := time.Now()
				jr.node.propagate(jr.owner)
				jr.node.prof.matchNS += int64(time.Since(t0))
			} else {
				jr.node.propagate(jr.owner)
			}
		}
	}
	delete(n.wmeNegResults, w)
}

// deleteTokenAndDescendants removes a token and its whole subtree,
// unhooking each token from its owner's memory and — for the root only —
// from its parent's child list (descendants' parents are deleted with
// them, so their child lists need no surgery). The traversal uses an
// explicit, reused stack: long join chains and large closure DAGs produce
// token trees deep enough that recursion risks unbounded goroutine stack
// growth.
func (n *Network) deleteTokenAndDescendants(t *token) {
	if t.dead {
		return
	}
	// Unhook the root from its (still live) parent; every descendant's
	// parent is deleted in the same sweep.
	if t.parent != nil {
		t.parent.dropChild(t)
	}
	stack := append(n.delStack[:0], t)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.dead {
			continue
		}
		cur.dead = true
		stack = append(stack, cur.children...)
		cur.children = nil
		cur.parent = nil
		if cur.owner != nil {
			cur.owner.removeToken(cur)
			cur.owner = nil
		}
	}
	n.delStack = stack[:0]
}

// deleteDescendants removes a token's subtree but keeps the token itself
// (used by negative nodes when an absence stops holding).
func (n *Network) deleteDescendants(t *token) {
	for len(t.children) > 0 {
		n.deleteTokenAndDescendants(t.children[len(t.children)-1])
	}
}

// ConflictSet returns the current instantiations in deterministic order.
func (n *Network) ConflictSet() []*match.Instantiation {
	out := make([]*match.Instantiation, 0, len(n.conflictSet))
	for _, in := range n.conflictSet {
		out = append(out, in)
	}
	match.SortInstantiations(out)
	return out
}

// RuleProfiles returns per-rule match activity in declaration order,
// implementing match.RuleProfiler. Match time is attributed only when the
// network was built with Options.Profile; the counters are always live.
func (n *Network) RuleProfiles() []match.RuleProfile {
	out := make([]match.RuleProfile, len(n.profs))
	for i, p := range n.profs {
		out[i] = match.RuleProfile{
			Rule:    p.name,
			MatchNS: p.matchNS,
			Tokens:  p.tokens,
			Probes:  p.probes,
			Insts:   p.insts,
		}
	}
	return out
}

// MemStats reports current state sizes.
func (n *Network) MemStats() match.MemStats {
	var ms match.MemStats
	for _, am := range n.alphaByTmpl {
		for _, a := range am {
			ms.AlphaItems += len(a.wmes)
		}
	}
	for _, b := range n.betaMems {
		ms.BetaTokens += len(b.tokens)
	}
	for _, neg := range n.negNodes {
		ms.BetaTokens += len(neg.tokens)
	}
	ms.ConflictSet = len(n.conflictSet)
	return ms
}
