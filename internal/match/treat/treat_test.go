package treat_test

import (
	"testing"

	"parulel/internal/compile"
	"parulel/internal/match"
	"parulel/internal/match/matchtest"
	"parulel/internal/match/treat"
	"parulel/internal/wm"
)

func compileOK(t *testing.T, src string) *compile.Program {
	t.Helper()
	p, err := compile.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func insert(t *testing.T, mem *wm.Memory, tmpl string, fields map[string]wm.Value) *wm.WME {
	t.Helper()
	w, err := mem.Insert(tmpl, fields)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestTreatSeededJoinNoDuplicates(t *testing.T) {
	// A WME matching two CEs of the same rule must not produce duplicate
	// instantiations when seeded at each CE.
	prog := compileOK(t, matchtest.Programs["self-join-same-template"])
	m := treat.New(prog.Rules)
	mem := wm.NewMemory(prog.Schema)
	a := insert(t, mem, "item", map[string]wm.Value{"id": wm.Int(1), "group": wm.Sym("g")})
	b := insert(t, mem, "item", map[string]wm.Value{"id": wm.Int(2), "group": wm.Sym("g")})
	m.Apply(wm.Delta{Added: []*wm.WME{a}})
	ch := m.Apply(wm.Delta{Added: []*wm.WME{b}})
	if len(ch.Added) != 2 {
		t.Fatalf("expected (a,b) and (b,a): %v", ch.Added)
	}
	if cs := m.ConflictSet(); len(cs) != 2 {
		t.Fatalf("conflict set: %v", cs)
	}
}

func TestTreatNegationEnablement(t *testing.T) {
	prog := compileOK(t, matchtest.Programs["negation"])
	m := treat.New(prog.Rules)
	mem := wm.NewMemory(prog.Schema)

	lock := insert(t, mem, "lock", map[string]wm.Value{"id": wm.Int(1)})
	m.Apply(wm.Delta{Added: []*wm.WME{lock}})
	task := insert(t, mem, "task", map[string]wm.Value{"id": wm.Int(1), "state": wm.Sym("ready")})
	ch := m.Apply(wm.Delta{Added: []*wm.WME{task}})
	if len(ch.Added) != 0 {
		t.Fatalf("locked task must not match: %v", ch.Added)
	}
	mem.Remove(lock.Time)
	ch = m.Apply(wm.Delta{Removed: []*wm.WME{lock}})
	if len(ch.Added) != 1 {
		t.Fatalf("unlock should enable instantiation: %+v", ch)
	}
	// Re-lock: violation removal path.
	lock2 := insert(t, mem, "lock", map[string]wm.Value{"id": wm.Int(1)})
	ch = m.Apply(wm.Delta{Added: []*wm.WME{lock2}})
	if len(ch.Removed) != 1 {
		t.Fatalf("re-lock should retract: %+v", ch)
	}
}

func TestTreatRemovalOfPositiveWME(t *testing.T) {
	prog := compileOK(t, matchtest.Programs["two-way-join"])
	m := treat.New(prog.Rules)
	mem := wm.NewMemory(prog.Schema)
	p := insert(t, mem, "pool", map[string]wm.Value{"id": wm.Int(1), "amount": wm.Int(75), "status": wm.Sym("free")})
	o := insert(t, mem, "order", map[string]wm.Value{"id": wm.Int(2), "lo": wm.Int(50), "hi": wm.Int(100), "filled": wm.Sym("no")})
	ch := m.Apply(wm.Delta{Added: []*wm.WME{p, o}})
	if len(ch.Added) != 1 {
		t.Fatalf("join expected: %+v", ch)
	}
	mem.Remove(o.Time)
	ch = m.Apply(wm.Delta{Removed: []*wm.WME{o}})
	if len(ch.Removed) != 1 {
		t.Fatalf("retraction expected: %+v", ch)
	}
	if ms := m.MemStats(); ms.ConflictSet != 0 {
		t.Fatalf("conflict set should be empty: %+v", ms)
	}
}

func TestTreatHoldsNoBetaTokens(t *testing.T) {
	prog := compileOK(t, matchtest.Programs["three-way-chain"])
	m := treat.New(prog.Rules)
	mem := wm.NewMemory(prog.Schema)
	for i := 0; i < 5; i++ {
		w := insert(t, mem, "node", map[string]wm.Value{"id": wm.Int(int64(i)), "next": wm.Int(int64(i + 1))})
		m.Apply(wm.Delta{Added: []*wm.WME{w}})
	}
	ms := m.MemStats()
	if ms.BetaTokens != 0 {
		t.Errorf("TREAT must hold no beta tokens, got %d", ms.BetaTokens)
	}
	if ms.ConflictSet != 3 {
		t.Errorf("conflict set = %d, want 3", ms.ConflictSet)
	}
}

func TestTreatConformance(t *testing.T) {
	matchtest.RunConformance(t, treat.New)
}

func TestTreatConformanceNoJoinIndex(t *testing.T) {
	matchtest.RunConformance(t, treat.Factory(treat.Options{DisableJoinIndex: true}))
}

func TestTreatIndexedVsUnindexedDifferential(t *testing.T) {
	matchtest.RunDifferential(t, treat.New, treat.Factory(treat.Options{DisableJoinIndex: true}))
}

var _ match.Matcher = treat.New(nil)
