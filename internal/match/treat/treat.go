// Package treat implements the TREAT match algorithm (Miranker, "TREAT: A
// Better Match Algorithm for AI Production Systems", 1987) as the
// alternative incremental matcher studied alongside RETE in the parallel
// production-system literature PARULEL belongs to.
//
// TREAT retains only the alpha memories and the conflict set — no beta
// (partial-match) state. On each working-memory change it re-derives the
// affected instantiations by seeded joins across the alpha memories:
//
//   - adding a WME that matches a positive CE seeds a join with that WME
//     fixed at the CE;
//   - removing such a WME deletes the conflict-set entries containing it;
//   - adding a WME that matches a negated CE deletes the instantiations it
//     now blocks;
//   - removing one re-derives the combinations it alone was blocking.
//
// Alpha memories of CEs with an equality join test carry a hash index by
// the tested field's value, so seeded joins probe one bucket per level
// instead of scanning the whole memory (Options.DisableJoinIndex restores
// the scan for ablation).
//
// The classic trade-off reproduced by experiment E4: cheaper memory and
// cheap removals, but join work is repeated on every addition, which loses
// to RETE on deep join chains with small deltas.
package treat

import (
	"time"

	"parulel/internal/compile"
	"parulel/internal/match"
	"parulel/internal/wm"
)

// Options configures a Treat matcher.
type Options struct {
	// DisableJoinIndex turns off the per-CE alpha-memory value indexes,
	// forcing seeded joins to scan whole alpha memories (ablation E11).
	DisableJoinIndex bool
	// Profile attributes match time per rule: each rule's slice of every
	// addWME/removeWME pass is timed and charged to the rule's profile.
	// The activity counters (tokens, probes, instantiations) are
	// maintained regardless; Profile only gates the timing.
	Profile bool
	// EvalMode selects the filter-expression backend: the bytecode VM
	// (the zero value, the default) or the tree-walking interpreter
	// (compile.EvalInterp, the reference semantics and the E13 ablation
	// baseline).
	EvalMode compile.EvalMode
}

// ruleProf accumulates one rule's match-layer activity.
type ruleProf struct {
	matchNS int64
	tokens  uint64
	probes  uint64
	insts   uint64
}

// wmeSet is an alpha memory or one of its hash-index buckets.
type wmeSet = map[*wm.WME]struct{}

// Treat is a TREAT matcher over a partition of rules. It implements
// match.Matcher and must be used by a single goroutine.
type Treat struct {
	rules []*ruleState
	// conflictSet holds all current instantiations by key.
	conflictSet map[match.Key]*match.Instantiation
	// byWME indexes instantiations by the WMEs they contain, for O(1)
	// removal.
	byWME map[*wm.WME]map[match.Key]*match.Instantiation
	coll  *match.ChangeCollector
	// profile gates per-rule match-time attribution (the counters inside
	// each ruleState's prof are always maintained).
	profile bool
	// evalMode is the filter-expression backend (Options.EvalMode).
	evalMode compile.EvalMode
}

var _ match.Matcher = (*Treat)(nil)

type ruleState struct {
	rule *compile.Rule
	// alphas holds one alpha memory per condition element, in source
	// order (negated CEs included).
	alphas []wmeSet
	// eqTest[i] is the index within CEs[i].JoinTests of the equality test
	// alphaIdx[i] is keyed on, or -1 when the CE has no equality join test
	// (or indexing is disabled).
	eqTest []int
	// alphaIdx[i], when eqTest[i] >= 0, indexes alphas[i] by the tested
	// field's value so seeded joins probe a bucket instead of scanning.
	alphaIdx []map[wm.Value]wmeSet
	// insts holds this rule's current instantiations by key, for
	// negated-CE violation checks.
	insts map[match.Key]*match.Instantiation
	prof  ruleProf
}

// New builds a TREAT matcher with default options for the given rules. It
// satisfies match.Factory.
func New(rules []*compile.Rule) match.Matcher { return NewWithOptions(rules, Options{}) }

// Factory returns a match.Factory that builds matchers with fixed options.
func Factory(opts Options) match.Factory {
	return func(rules []*compile.Rule) match.Matcher { return NewWithOptions(rules, opts) }
}

// NewWithOptions builds a TREAT matcher for the given rules.
func NewWithOptions(rules []*compile.Rule, opts Options) match.Matcher {
	t := &Treat{
		conflictSet: make(map[match.Key]*match.Instantiation),
		byWME:       make(map[*wm.WME]map[match.Key]*match.Instantiation),
		coll:        match.NewChangeCollector(),
		profile:     opts.Profile,
		evalMode:    opts.EvalMode,
	}
	for _, r := range rules {
		rs := &ruleState{
			rule:     r,
			alphas:   make([]wmeSet, len(r.CEs)),
			eqTest:   make([]int, len(r.CEs)),
			alphaIdx: make([]map[wm.Value]wmeSet, len(r.CEs)),
			insts:    make(map[match.Key]*match.Instantiation),
		}
		for i, ce := range r.CEs {
			rs.alphas[i] = make(wmeSet)
			rs.eqTest[i] = -1
			if opts.DisableJoinIndex {
				continue
			}
			for j := range ce.JoinTests {
				if ce.JoinTests[j].Op == compile.OpEq {
					rs.eqTest[i] = j
					rs.alphaIdx[i] = make(map[wm.Value]wmeSet)
					break
				}
			}
		}
		t.rules = append(t.rules, rs)
	}
	return t
}

// alphaInsert adds w to the CE's alpha memory and its value index.
func (rs *ruleState) alphaInsert(i int, w *wm.WME) {
	rs.alphas[i][w] = struct{}{}
	if j := rs.eqTest[i]; j >= 0 {
		v := w.Fields[rs.rule.CEs[i].JoinTests[j].Field]
		b := rs.alphaIdx[i][v]
		if b == nil {
			b = make(wmeSet)
			rs.alphaIdx[i][v] = b
		}
		b[w] = struct{}{}
	}
}

// alphaRemove removes w from the CE's alpha memory and its value index.
func (rs *ruleState) alphaRemove(i int, w *wm.WME) {
	delete(rs.alphas[i], w)
	if j := rs.eqTest[i]; j >= 0 {
		v := w.Fields[rs.rule.CEs[i].JoinTests[j].Field]
		if b := rs.alphaIdx[i][v]; b != nil {
			delete(b, w)
			if len(b) == 0 {
				delete(rs.alphaIdx[i], v)
			}
		}
	}
}

// candidates returns the alpha-memory subset worth joining at CE i given
// the bindings in vec: the index bucket for the joined value when the CE
// is indexed, the whole memory otherwise. skip reports which join test the
// bucket already guarantees (-1 when none).
func (rs *ruleState) candidates(i int, vec []*wm.WME) (cands wmeSet, skip int) {
	if j := rs.eqTest[i]; j >= 0 {
		jt := &rs.rule.CEs[i].JoinTests[j]
		return rs.alphaIdx[i][vec[jt.OtherCE].Fields[jt.OtherField]], j
	}
	return rs.alphas[i], -1
}

// Apply feeds a working-memory delta and returns conflict-set changes.
func (t *Treat) Apply(delta wm.Delta) match.Changes {
	for _, w := range delta.Removed {
		t.removeWME(w)
	}
	for _, w := range delta.Added {
		t.addWME(w)
	}
	return t.coll.Take()
}

func (t *Treat) addInst(rs *ruleState, in *match.Instantiation) {
	key := in.Key()
	if _, dup := t.conflictSet[key]; dup {
		return
	}
	rs.prof.insts++
	t.conflictSet[key] = in
	rs.insts[key] = in
	for _, w := range in.WMEs {
		idx := t.byWME[w]
		if idx == nil {
			idx = make(map[match.Key]*match.Instantiation)
			t.byWME[w] = idx
		}
		idx[key] = in
	}
	t.coll.Add(in)
}

func (t *Treat) dropInst(rs *ruleState, in *match.Instantiation) {
	key := in.Key()
	if _, ok := t.conflictSet[key]; !ok {
		return
	}
	delete(t.conflictSet, key)
	delete(rs.insts, key)
	for _, w := range in.WMEs {
		if idx := t.byWME[w]; idx != nil {
			delete(idx, key)
			if len(idx) == 0 {
				delete(t.byWME, w)
			}
		}
	}
	t.coll.Remove(in)
}

func (t *Treat) ruleStateOf(in *match.Instantiation) *ruleState {
	for _, rs := range t.rules {
		if rs.rule == in.Rule {
			return rs
		}
	}
	panic("treat: instantiation of unknown rule")
}

func (t *Treat) addWME(w *wm.WME) {
	for _, rs := range t.rules {
		if t.profile {
			start := time.Now()
			t.addWMERule(rs, w)
			rs.prof.matchNS += time.Since(start).Nanoseconds()
		} else {
			t.addWMERule(rs, w)
		}
	}
}

// addWMERule is one rule's slice of an addition: alpha maintenance plus
// the seeded joins. Split out so profiling can time it per rule.
func (t *Treat) addWMERule(rs *ruleState, w *wm.WME) {
	// First pass: insert into every matching alpha memory so joins see
	// a consistent state.
	matched := make([]int, 0, 4)
	for i, ce := range rs.rule.CEs {
		if ce.MatchesAlpha(w) {
			rs.alphaInsert(i, w)
			matched = append(matched, i)
		}
	}
	if len(matched) == 0 {
		return
	}
	// Negated matches first: they can only retract, and retracting
	// before seeding keeps the additions consistent with the new WM.
	for _, i := range matched {
		ce := rs.rule.CEs[i]
		if !ce.Negated {
			continue
		}
		for _, in := range instList(rs.insts) {
			rs.prof.probes++
			if negMatches(ce, w, in.WMEs, -1) {
				t.dropInst(rs, in)
			}
		}
	}
	for _, i := range matched {
		ce := rs.rule.CEs[i]
		if ce.Negated {
			continue
		}
		t.seedJoin(rs, ce.PosIndex, w, nil)
	}
}

func (t *Treat) removeWME(w *wm.WME) {
	// Retract instantiations containing w (positive usages) across all
	// rules.
	if idx := t.byWME[w]; idx != nil {
		for _, in := range instList(idx) {
			rs := t.ruleStateOf(in)
			if t.profile {
				start := time.Now()
				t.dropInst(rs, in)
				rs.prof.matchNS += time.Since(start).Nanoseconds()
			} else {
				t.dropInst(rs, in)
			}
		}
	}
	for _, rs := range t.rules {
		if t.profile {
			start := time.Now()
			t.removeWMERule(rs, w)
			rs.prof.matchNS += time.Since(start).Nanoseconds()
		} else {
			t.removeWMERule(rs, w)
		}
	}
}

// removeWMERule is one rule's slice of a removal: alpha maintenance plus
// removal-enablement joins for negated CEs that held the WME.
func (t *Treat) removeWMERule(rs *ruleState, w *wm.WME) {
	// Remove from the rule's alpha memories, remembering which negated
	// CEs held it.
	var negHits []int
	for i, ce := range rs.rule.CEs {
		if _, ok := rs.alphas[i][w]; !ok {
			continue
		}
		rs.alphaRemove(i, w)
		if ce.Negated {
			negHits = append(negHits, i)
		}
	}
	// Combinations that only w was blocking are now live.
	for _, i := range negHits {
		t.seedJoin(rs, -1, w, rs.rule.CEs[i])
	}
}

// instList snapshots a map of instantiations so the caller can mutate the
// map while iterating.
func instList(m map[match.Key]*match.Instantiation) []*match.Instantiation {
	out := make([]*match.Instantiation, 0, len(m))
	for _, in := range m {
		out = append(out, in)
	}
	return out
}

// negMatches reports whether WME w satisfies the negated CE's join tests
// against the positive vector vec (alpha tests are already guaranteed by
// alpha membership). skip names a join test already guaranteed by an index
// probe, or -1.
func negMatches(ce *compile.CondElem, w *wm.WME, vec []*wm.WME, skip int) bool {
	for i, jt := range ce.JoinTests {
		if i == skip {
			continue
		}
		if !jt.Op.Apply(w.Fields[jt.Field], vec[jt.OtherCE].Fields[jt.OtherField]) {
			return false
		}
	}
	return true
}

// seedJoin enumerates complete matches of rs.rule and adds them.
//
// With seedPos >= 0, the WME seed is fixed at positive CE seedPos, and to
// avoid generating the same combination from two seed positions when the
// seed matches several CEs, positions before seedPos exclude the seed.
//
// With seedPos < 0, negSeed names a negated CE and seed the WME just
// removed from its alpha memory: only combinations that seed *would have
// blocked* are enumerated (removal-enablement).
func (t *Treat) seedJoin(rs *ruleState, seedPos int, seed *wm.WME, negSeed *compile.CondElem) {
	vec := make([]*wm.WME, rs.rule.NumPositive)
	t.joinFrom(rs, 0, vec, seedPos, seed, negSeed)
}

func (t *Treat) joinFrom(rs *ruleState, ceIdx int, vec []*wm.WME, seedPos int, seed *wm.WME, negSeed *compile.CondElem) {
	if ceIdx == len(rs.rule.CEs) {
		full := append([]*wm.WME(nil), vec...)
		t.addInst(rs, match.NewInstantiation(rs.rule, full))
		return
	}
	ce := rs.rule.CEs[ceIdx]
	if ce.Negated {
		// The negation must hold over the bindings established so far
		// (all its join tests reference earlier positive CEs). Indexed
		// CEs only need to check the bucket of the joined value.
		cands, skip := rs.candidates(ceIdx, vec)
		for w := range cands {
			rs.prof.probes++
			if negMatches(ce, w, vec, skip) {
				return
			}
		}
		// Removal-enablement: the removed WME must have been blocking this
		// combination.
		if ce == negSeed && !negMatches(ce, seed, vec, -1) {
			return
		}
		t.joinFrom(rs, ceIdx+1, vec, seedPos, seed, negSeed)
		return
	}
	p := ce.PosIndex
	tryWME := func(w *wm.WME, skip int) {
		rs.prof.probes++
		for i, jt := range ce.JoinTests {
			if i == skip {
				continue
			}
			if !jt.Op.Apply(w.Fields[jt.Field], vec[jt.OtherCE].Fields[jt.OtherField]) {
				return
			}
		}
		vec[p] = w
		if match.EvalFilters(ce, vec[:p+1], t.evalMode) {
			rs.prof.tokens++
			t.joinFrom(rs, ceIdx+1, vec, seedPos, seed, negSeed)
		}
		vec[p] = nil
	}
	if p == seedPos {
		tryWME(seed, -1)
		return
	}
	cands, skip := rs.candidates(ceIdx, vec)
	for w := range cands {
		if seedPos >= 0 && w == seed && p < seedPos {
			continue // dedup: earlier positions exclude the seed
		}
		tryWME(w, skip)
	}
}

// ConflictSet returns the current instantiations in deterministic order.
func (t *Treat) ConflictSet() []*match.Instantiation {
	out := make([]*match.Instantiation, 0, len(t.conflictSet))
	for _, in := range t.conflictSet {
		out = append(out, in)
	}
	match.SortInstantiations(out)
	return out
}

// RuleProfiles returns per-rule match activity in declaration order.
// MatchNS is populated only when the matcher was built with
// Options.Profile; counters are always live.
func (t *Treat) RuleProfiles() []match.RuleProfile {
	out := make([]match.RuleProfile, len(t.rules))
	for i, rs := range t.rules {
		out[i] = match.RuleProfile{
			Rule:    rs.rule.Name,
			MatchNS: rs.prof.matchNS,
			Tokens:  rs.prof.tokens,
			Probes:  rs.prof.probes,
			Insts:   rs.prof.insts,
		}
	}
	return out
}

var _ match.RuleProfiler = (*Treat)(nil)

// MemStats reports current state sizes. TREAT holds no beta tokens.
func (t *Treat) MemStats() match.MemStats {
	var ms match.MemStats
	for _, rs := range t.rules {
		for _, a := range rs.alphas {
			ms.AlphaItems += len(a)
		}
	}
	ms.ConflictSet = len(t.conflictSet)
	return ms
}
