package match

import (
	"fmt"
	"io"
	"sort"
)

// Explain writes a human-readable listing of a conflict set: each
// instantiation's rule, refraction status, matched elements and variable
// bindings. fired may be nil.
func Explain(w io.Writer, ins []*Instantiation, fired map[Key]bool) error {
	if _, err := fmt.Fprintf(w, "conflict set: %d instantiation(s)\n", len(ins)); err != nil {
		return err
	}
	for _, in := range ins {
		status := "eligible"
		if fired[in.Key()] {
			status = "fired (refracted)"
		}
		if _, err := fmt.Fprintf(w, "%s  [%s]\n", in, status); err != nil {
			return err
		}
		for i, wme := range in.WMEs {
			if _, err := fmt.Fprintf(w, "  %d: %s\n", i+1, wme); err != nil {
				return err
			}
		}
		names := make([]string, 0, len(in.Rule.Bindings))
		for name := range in.Rule.Bindings {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "  <%s> = %s\n", name, in.Binding(in.Rule.Bindings[name])); err != nil {
				return err
			}
		}
	}
	return nil
}
