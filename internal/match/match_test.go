package match

import (
	"math/rand"
	"testing"

	"parulel/internal/compile"
	"parulel/internal/wm"
)

func testRuleAndWMEs(t *testing.T) (*compile.Program, *wm.Memory) {
	t.Helper()
	prog, err := compile.CompileSource(`
(literalize a x)
(rule r1 (a ^x <v>) (a ^x (<> <v>)) --> (halt))
(rule r2 (a ^x <v>) --> (halt))
`)
	if err != nil {
		t.Fatal(err)
	}
	return prog, wm.NewMemory(prog.Schema)
}

func mkWME(t *testing.T, mem *wm.Memory, v int64) *wm.WME {
	t.Helper()
	w, err := mem.Insert("a", map[string]wm.Value{"x": wm.Int(v)})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestInstantiationKeyAndTag(t *testing.T) {
	prog, mem := testRuleAndWMEs(t)
	r1, _ := prog.RuleByName("r1")
	w1, w2 := mkWME(t, mem, 1), mkWME(t, mem, 2)
	in := NewInstantiation(r1, []*wm.WME{w1, w2})
	if in.KeyString() != "0:1:2" {
		t.Errorf("key string = %q", in.KeyString())
	}
	if in.Tag() != w2.Time {
		t.Errorf("tag = %d, want %d", in.Tag(), w2.Time)
	}
	rev := NewInstantiation(r1, []*wm.WME{w2, w1})
	if rev.Key() == in.Key() {
		t.Error("order of WMEs must distinguish keys")
	}
	dup := NewInstantiation(r1, []*wm.WME{w1, w2})
	if dup.Key() != in.Key() {
		t.Error("equal rule and WME vector must produce equal keys")
	}
	r2, _ := prog.RuleByName("r2")
	other := NewInstantiation(r2, []*wm.WME{w1, w2})
	if other.Key() == in.Key() {
		t.Error("distinct rules must distinguish keys")
	}
}

func TestInstantiationKeyDeepVectors(t *testing.T) {
	// Vectors longer than the inline tag prefix must still be
	// distinguished (via length and the hash over the full vector).
	prog, mem := testRuleAndWMEs(t)
	r1, _ := prog.RuleByName("r1")
	wmes := make([]*wm.WME, 0, 8)
	for i := int64(1); i <= 8; i++ {
		wmes = append(wmes, mkWME(t, mem, i))
	}
	seen := make(map[Key]string)
	// Same first keyTagsInline WMEs, different tails.
	for tail := 4; tail < 8; tail++ {
		vec := append(append([]*wm.WME(nil), wmes[:4]...), wmes[tail])
		in := NewInstantiation(r1, vec)
		if prev, dup := seen[in.Key()]; dup {
			t.Fatalf("key collision: %s and %s", prev, in.KeyString())
		}
		seen[in.Key()] = in.KeyString()
	}
	// A prefix must not collide with its extension.
	short := NewInstantiation(r1, wmes[:4])
	if _, dup := seen[short.Key()]; dup {
		t.Fatal("prefix vector collided with an extension")
	}
}

func TestInstantiationCompareTotalOrder(t *testing.T) {
	prog, mem := testRuleAndWMEs(t)
	r1, _ := prog.RuleByName("r1")
	r2, _ := prog.RuleByName("r2")
	w1, w2, w3 := mkWME(t, mem, 1), mkWME(t, mem, 2), mkWME(t, mem, 3)

	a := NewInstantiation(r1, []*wm.WME{w1, w2})
	b := NewInstantiation(r1, []*wm.WME{w1, w3})
	c := NewInstantiation(r2, []*wm.WME{w1})

	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Error("lexicographic time-vector order violated")
	}
	if a.Compare(c) >= 0 {
		t.Error("rule index must dominate the order")
	}
	if a.Compare(a) != 0 {
		t.Error("self-compare must be 0")
	}
}

func TestInstantiationBinding(t *testing.T) {
	prog, mem := testRuleAndWMEs(t)
	r1, _ := prog.RuleByName("r1")
	w1, w2 := mkWME(t, mem, 7), mkWME(t, mem, 9)
	in := NewInstantiation(r1, []*wm.WME{w1, w2})
	if got := in.Binding(compile.VarRef{CE: 1, Field: 0}); got != wm.Int(9) {
		t.Errorf("binding = %v", got)
	}
}

func TestSortInstantiationsDeterministic(t *testing.T) {
	prog, mem := testRuleAndWMEs(t)
	r2, _ := prog.RuleByName("r2")
	var ins []*Instantiation
	for i := 0; i < 50; i++ {
		ins = append(ins, NewInstantiation(r2, []*wm.WME{mkWME(t, mem, int64(i))}))
	}
	shuffled := append([]*Instantiation(nil), ins...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	SortInstantiations(shuffled)
	for i := range ins {
		if shuffled[i].Key() != ins[i].Key() {
			t.Fatalf("sort not deterministic at %d: %s vs %s", i, shuffled[i].KeyString(), ins[i].KeyString())
		}
	}
}

func TestChangeCollectorNetsOut(t *testing.T) {
	prog, mem := testRuleAndWMEs(t)
	r2, _ := prog.RuleByName("r2")
	a := NewInstantiation(r2, []*wm.WME{mkWME(t, mem, 1)})
	b := NewInstantiation(r2, []*wm.WME{mkWME(t, mem, 2)})
	c := NewInstantiation(r2, []*wm.WME{mkWME(t, mem, 3)})

	coll := NewChangeCollector()
	coll.Add(a) // add then remove: nets to nothing
	coll.Remove(a)
	coll.Add(b)    // plain add
	coll.Remove(c) // plain remove
	ch := coll.Take()
	if len(ch.Added) != 1 || ch.Added[0] != b {
		t.Errorf("added: %v", ch.Added)
	}
	if len(ch.Removed) != 1 || ch.Removed[0] != c {
		t.Errorf("removed: %v", ch.Removed)
	}
	// Take resets.
	ch = coll.Take()
	if len(ch.Added)+len(ch.Removed) != 0 {
		t.Error("collector not reset by Take")
	}
}

func TestEvalFiltersErrorMeansNoMatch(t *testing.T) {
	prog, err := compile.CompileSource(`
(literalize a x)
(rule r (a ^x <v>) (test (> (+ <v> 1) 0)) --> (halt))
`)
	if err != nil {
		t.Fatal(err)
	}
	mem := wm.NewMemory(prog.Schema)
	num, _ := mem.Insert("a", map[string]wm.Value{"x": wm.Int(5)})
	sym, _ := mem.Insert("a", map[string]wm.Value{"x": wm.Sym("oops")})
	ce := prog.Rules[0].CEs[0]
	if !EvalFilters(ce, []*wm.WME{num}, compile.EvalBytecode) {
		t.Error("numeric WME should pass the filter")
	}
	// (+ oops 1) errors at eval time; that counts as a failed test.
	if EvalFilters(ce, []*wm.WME{sym}, compile.EvalBytecode) {
		t.Error("eval error must mean no-match")
	}
}
