package match

// ChangeCollector accumulates conflict-set additions and removals during
// one delta application and nets out instantiations that were both added
// and removed (e.g. created by one WME of the delta and retracted by a
// later one).
type ChangeCollector struct {
	net   map[Key]int
	byKey map[Key]*Instantiation
}

// NewChangeCollector returns an empty collector.
func NewChangeCollector() *ChangeCollector {
	return &ChangeCollector{net: make(map[Key]int), byKey: make(map[Key]*Instantiation)}
}

// Add records an instantiation addition.
func (c *ChangeCollector) Add(in *Instantiation) {
	c.net[in.Key()]++
	c.byKey[in.Key()] = in
}

// Remove records an instantiation removal.
func (c *ChangeCollector) Remove(in *Instantiation) {
	c.net[in.Key()]--
	c.byKey[in.Key()] = in
}

// Take returns the netted, deterministically sorted changes and resets the
// collector.
func (c *ChangeCollector) Take() Changes {
	var ch Changes
	for k, v := range c.net {
		switch {
		case v > 0:
			ch.Added = append(ch.Added, c.byKey[k])
		case v < 0:
			ch.Removed = append(ch.Removed, c.byKey[k])
		}
		delete(c.net, k)
		delete(c.byKey, k)
	}
	SortInstantiations(ch.Added)
	SortInstantiations(ch.Removed)
	return ch
}
