package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"parulel/internal/obs"
)

func runCLI(t *testing.T, args ...string) (code int, out, errOut string) {
	t.Helper()
	var o, e bytes.Buffer
	code = run(args, &o, &e)
	return code, o.String(), e.String()
}

func TestCLIRunDemoFile(t *testing.T) {
	code, out, errOut := runCLI(t, "run", "testdata/demo.par")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "job 1 done") || !strings.Contains(out, "job 2 done") {
		t.Errorf("output missing job reports: %q", out)
	}
	if !strings.Contains(errOut, "engine=parulel") || !strings.Contains(errOut, "cycles=") {
		t.Errorf("stats missing: %q", errOut)
	}
}

func TestCLIRunBuiltinWithEngines(t *testing.T) {
	for _, engine := range []string{"parulel", "ops5-lex", "ops5-mea"} {
		for _, matcher := range []string{"rete", "treat"} {
			code, _, errOut := runCLI(t, "run", "-engine", engine, "-matcher", matcher, "-builtin", "closure")
			if code != 0 {
				t.Errorf("engine=%s matcher=%s: exit %d: %s", engine, matcher, code, errOut)
			}
		}
	}
}

func TestCLIRunTraceAndNoMeta(t *testing.T) {
	code, _, errOut := runCLI(t, "run", "-trace", "-no-meta", "testdata/demo.par")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "cycle 1:") {
		t.Errorf("trace missing: %q", errOut)
	}
}

func TestCLIRunTraceJSONL(t *testing.T) {
	path := t.TempDir() + "/trace.jsonl"
	code, _, errOut := runCLI(t, "run", "-trace="+path, "testdata/demo.par")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "structured trace written to ") {
		t.Errorf("trace note missing: %q", errOut)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no cycle events written")
	}
	fired := 0
	for i, e := range events {
		if e.Cycle != i+1 {
			t.Errorf("event %d has cycle %d, want %d", i, e.Cycle, i+1)
		}
		fired += e.Fired
	}
	if fired == 0 {
		t.Error("no firings recorded across the trace")
	}
}

func TestCLIPrintRoundTrip(t *testing.T) {
	code, out, errOut := runCLI(t, "print", "testdata/demo.par")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "(rule split") || !strings.Contains(out, "(literalize job") {
		t.Errorf("printed source wrong: %q", out)
	}
	code, out2, _ := runCLI(t, "print", "-builtin", "alexsys")
	if code != 0 || !strings.Contains(out2, "metarule one-award-per-pool") {
		t.Errorf("print -builtin failed: %d %q", code, out2)
	}
}

func TestCLIList(t *testing.T) {
	code, out, _ := runCLI(t, "list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, name := range []string{"quickstart", "alexsys", "waltz", "closure"} {
		if !strings.Contains(out, name) {
			t.Errorf("list missing %s: %q", name, out)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{},                          // no args
		{"bogus"},                   // unknown subcommand
		{"run"},                     // no program
		{"run", "missing-file.par"}, // unreadable file
		{"run", "-builtin", "nope"}, // unknown builtin
		{"run", "-engine", "x", "testdata/demo.par"},  // bad engine
		{"run", "-matcher", "x", "testdata/demo.par"}, // bad matcher
		{"print"}, // no file
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code == 0 {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestCLIMaxCyclesSurfaces(t *testing.T) {
	code, _, errOut := runCLI(t, "run", "-max-cycles", "1", "-builtin", "closure")
	if code == 0 && !strings.Contains(errOut, "maximum cycle") {
		// closure on empty WM quiesces immediately, so this only errors
		// when cycles actually run; with the (wm)-less builtin it should
		// simply succeed with zero cycles.
		if !strings.Contains(errOut, "cycles=0") {
			t.Errorf("unexpected outcome: code=%d err=%q", code, errOut)
		}
	}
}

func TestCLISnapshotRoundTrip(t *testing.T) {
	dump := t.TempDir() + "/wm.par"
	code, _, errOut := runCLI(t, "run", "-dump-wm", dump, "testdata/demo.par")
	if code != 0 {
		t.Fatalf("dump run failed: %s", errOut)
	}
	// Run the demo again with the dumped WM loaded on top: the reports
	// already exist, so nothing new happens, but loading must succeed.
	code, _, errOut = runCLI(t, "run", "-wm", dump, "testdata/demo.par")
	if code != 0 {
		t.Fatalf("load run failed: %s", errOut)
	}
	if !strings.Contains(errOut, "loaded ") {
		t.Errorf("load message missing: %q", errOut)
	}
	// Loading a nonexistent snapshot fails.
	if code, _, _ := runCLI(t, "run", "-wm", "missing.wm", "testdata/demo.par"); code == 0 {
		t.Error("missing snapshot should fail")
	}
}

func TestCLIExplain(t *testing.T) {
	code, _, errOut := runCLI(t, "run", "-explain", "testdata/demo.par")
	if code != 0 {
		t.Fatalf("explain run failed: %s", errOut)
	}
	if !strings.Contains(errOut, "conflict set:") {
		t.Errorf("explain output missing: %q", errOut)
	}
	// Works on the sequential engine too.
	code, _, errOut = runCLI(t, "run", "-engine", "ops5-lex", "-explain", "testdata/demo.par")
	if code != 0 || !strings.Contains(errOut, "conflict set:") {
		t.Errorf("ops5 explain: code=%d out=%q", code, errOut)
	}
}

func TestCLIOptimize(t *testing.T) {
	code, _, errOut := runCLI(t, "run", "-optimize", "-builtin", "closure")
	if code != 0 {
		t.Fatalf("optimize run failed: %s", errOut)
	}
}
