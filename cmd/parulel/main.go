// Command parulel runs PARULEL programs.
//
//	parulel run prog.par              run a program to quiescence
//	parulel run -builtin alexsys      run an embedded example program
//	parulel print prog.par            parse and re-print canonical source
//	parulel list                      list embedded programs
//
// Run flags select the engine (-engine parulel|ops5-lex|ops5-mea), the
// matcher (-matcher rete|treat), the expression backend (-eval
// bytecode|interp), worker count, cycle limit, and tracing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"parulel"
	"parulel/internal/obs"
)

func usage(errW io.Writer) {
	fmt.Fprintf(errW, `usage:
  parulel run [flags] <prog.par>   run a program
  parulel print <prog.par>         parse and pretty-print a program
  parulel list                     list embedded example programs

run flags:
`)
	fs, _ := runFlags(errW)
	fs.PrintDefaults()
}

// traceFlag accepts both the classic boolean form (-trace for a text
// trace on stderr) and a path form (-trace=events.jsonl for structured
// JSONL cycle events). Because it reports IsBoolFlag, the path must be
// attached with '=', not passed as a separate argument.
type traceFlag struct {
	enabled bool
	path    string
}

func (f *traceFlag) String() string {
	if f.path != "" {
		return f.path
	}
	if f.enabled {
		return "true"
	}
	return "false"
}

func (f *traceFlag) Set(s string) error {
	switch s {
	case "true":
		f.enabled, f.path = true, ""
	case "false":
		f.enabled, f.path = false, ""
	default:
		f.enabled, f.path = true, s
	}
	return nil
}

func (f *traceFlag) IsBoolFlag() bool { return true }

type runOpts struct {
	engine    string
	matcher   string
	eval      string
	workers   int
	maxCycles int
	trace     traceFlag
	builtin   string
	noMeta    bool
	stats     bool
	loadWM    string
	dumpWM    string
	explain   bool
	optimize  bool
}

func runFlags(errW io.Writer) (*flag.FlagSet, *runOpts) {
	o := &runOpts{}
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	fs.SetOutput(errW)
	fs.StringVar(&o.engine, "engine", "parulel", "engine: parulel, ops5-lex, ops5-mea")
	fs.StringVar(&o.matcher, "matcher", "rete", "match algorithm: rete, treat")
	fs.StringVar(&o.eval, "eval", "bytecode", "expression backend: bytecode, interp")
	fs.IntVar(&o.workers, "workers", 4, "parallel workers (parulel engine)")
	fs.IntVar(&o.maxCycles, "max-cycles", 100000, "abort after this many cycles (0 = unlimited)")
	fs.Var(&o.trace, "trace", "print a line per cycle; -trace=FILE.jsonl instead writes structured cycle events as JSONL")
	fs.StringVar(&o.builtin, "builtin", "", "run an embedded program instead of a file")
	fs.BoolVar(&o.noMeta, "no-meta", false, "strip meta-rules before running")
	fs.BoolVar(&o.stats, "stats", true, "print run statistics")
	fs.StringVar(&o.loadWM, "wm", "", "load additional facts from a (wm …) snapshot file before running")
	fs.StringVar(&o.dumpWM, "dump-wm", "", "write the final working memory to this file as a (wm …) snapshot")
	fs.BoolVar(&o.explain, "explain", false, "print the final conflict set with bindings")
	fs.BoolVar(&o.optimize, "optimize", false, "apply the join-ordering optimization before running")
	return fs, o
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the CLI; split from main for testability.
func run(args []string, out, errW io.Writer) int {
	if len(args) < 1 {
		usage(errW)
		return 2
	}
	var err error
	switch args[0] {
	case "run":
		err = cmdRun(args[1:], out, errW)
	case "print":
		err = cmdPrint(args[1:], out, errW)
	case "list":
		for _, n := range parulel.Builtins() {
			fmt.Fprintln(out, n)
		}
	default:
		usage(errW)
		return 2
	}
	if err != nil {
		fmt.Fprintln(errW, "parulel:", err)
		return 1
	}
	return 0
}

func loadProgram(path, builtin string) (*parulel.Program, error) {
	if builtin != "" {
		return parulel.LoadBuiltin(builtin)
	}
	if path == "" {
		return nil, fmt.Errorf("no program file given (or use -builtin)")
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parulel.Parse(string(src))
}

func cmdRun(args []string, out, errW io.Writer) error {
	fs, o := runFlags(errW)
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, err := loadProgram(fs.Arg(0), o.builtin)
	if err != nil {
		return err
	}
	if o.noMeta {
		if prog, err = prog.WithoutMetaRules(); err != nil {
			return err
		}
	}
	if o.optimize {
		if prog, err = prog.Optimize(); err != nil {
			return err
		}
	}
	engine, err := parulel.ParseEngineKind(o.engine)
	if err != nil {
		return err
	}
	matcher, err := parulel.ParseMatcherKind(o.matcher)
	if err != nil {
		return err
	}
	evalMode, err := parulel.ParseEvalMode(o.eval)
	if err != nil {
		return err
	}
	cfg := parulel.Config{
		Engine:    engine,
		Matcher:   matcher,
		Workers:   o.workers,
		Output:    out,
		MaxCycles: o.maxCycles,
		EvalMode:  evalMode,
	}
	var traceFile *os.File
	var traceJSONL *obs.JSONLWriter
	if o.trace.enabled {
		if o.trace.path == "" {
			cfg.Trace = errW
		} else {
			traceFile, err = os.Create(o.trace.path)
			if err != nil {
				return err
			}
			defer traceFile.Close()
			traceJSONL = obs.NewJSONLWriter(traceFile)
			cfg.Tracer = traceJSONL
		}
	}
	eng := parulel.NewEngine(prog, cfg)
	if o.loadWM != "" {
		f, err := os.Open(o.loadWM)
		if err != nil {
			return err
		}
		n, err := eng.LoadWM(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(errW, "loaded %d facts from %s\n", n, o.loadWM)
	}
	res, err := eng.Run()
	if err != nil {
		return err
	}
	if traceJSONL != nil {
		if err := traceJSONL.Err(); err != nil {
			return fmt.Errorf("writing %s: %w", o.trace.path, err)
		}
		if err := traceFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(errW, "structured trace written to %s\n", o.trace.path)
	}
	if o.explain {
		if err := eng.Explain(errW); err != nil {
			return err
		}
	}
	if o.dumpWM != "" {
		f, err := os.Create(o.dumpWM)
		if err != nil {
			return err
		}
		if err := eng.DumpWM(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.stats {
		fmt.Fprintf(errW, "engine=%s matcher=%s cycles=%d firings=%d redactions=%d conflicts=%d halted=%v\n",
			engine, matcher, res.Cycles, res.Firings, res.Redactions, res.WriteConflicts, res.Halted)
		fmt.Fprintf(errW, "phases: match %.1f%%  redact %.1f%%  fire %.1f%%  apply %.1f%%\n",
			res.MatchPct, res.RedactPct, res.FirePct, res.ApplyPct)
	}
	return nil
}

func cmdPrint(args []string, out, errW io.Writer) error {
	fs := flag.NewFlagSet("print", flag.ContinueOnError)
	fs.SetOutput(errW)
	builtin := fs.String("builtin", "", "print an embedded program")
	if err := fs.Parse(args); err != nil {
		return err
	}
	prog, err := loadProgram(fs.Arg(0), *builtin)
	if err != nil {
		return err
	}
	fmt.Fprint(out, prog.Source())
	return nil
}
