// Command parload generates mixed traffic against a running paruleld and
// reports throughput and latency quantiles as JSON.
//
//	parload -url http://localhost:8467 -d 10s -c 8
//	parload -url http://n1:8467,http://n2:8467,http://n3:8467   # cluster targets
//	parload -mix assert=4,batch=2,run=1,snapshot=1 -batch 16
//	parload -stream -stream-frames 8 -batch 64   # continuous NDJSON ingest
//	parload -min-mutations-per-sec 100 -max-5xx 0 -max-transport-errors 0   # CI smoke gate
//
// With multiple -url endpoints the generator spreads sessions across them,
// follows 307 ownership redirects (caching the owner per session), and
// fails a request over to the next endpoint when a node stops answering.
//
// The self-check flags make the process exit nonzero when the run violates
// the given bounds, so CI can gate on a load run without parsing JSON.
// 429 backpressure rejections and transport-level failures are counted
// apart from 5xx: -max-5xx 0 tolerates deliberate admission-control
// rejections and node kills, while -max-429 and -max-transport-errors
// bound those separately when a run should see neither.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"parulel/internal/load"
)

func main() {
	url := flag.String("url", "http://localhost:8467", "base URL(s) of the paruleld instance(s), comma-separated for a cluster")
	sessions := flag.Int("sessions", 4, "sessions to create and spread traffic over")
	concurrency := flag.Int("c", 8, "concurrent client goroutines")
	duration := flag.Duration("d", 10*time.Second, "how long to generate load")
	mixSpec := flag.String("mix", "assert=4,batch=2,run=1,snapshot=1", "op mix weights, kind=weight comma-separated")
	batchSize := flag.Int("batch", 16, "facts per batch request (and per stream frame)")
	stream := flag.Bool("stream", false, "continuous-ingest mode: all traffic is NDJSON stream requests against a TTL+window program")
	streamFrames := flag.Int("stream-frames", 8, "NDJSON frames per stream request")
	streamTTL := flag.Int64("stream-ttl", 0, "per-fact TTL override sent with streamed facts (0 = template default)")
	workers := flag.Int("workers", 0, "engine workers per session (0 = server default)")
	runTimeout := flag.Duration("run-timeout", 10*time.Second, "deadline sent with run ops")
	seed := flag.Int64("seed", 1, "RNG seed for the op mix")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	max5xx := flag.Int("max-5xx", -1, "self-check: fail when more than this many 5xx responses (-1 = off)")
	max429 := flag.Int("max-429", -1, "self-check: fail when more than this many 429 backpressure rejections (-1 = off)")
	maxTransport := flag.Int("max-transport-errors", -1, "self-check: fail when more than this many transport-level failures (-1 = off)")
	minMutPerSec := flag.Float64("min-mutations-per-sec", 0, "self-check: fail when mutation throughput is below this")
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fail("bad -mix: %v", err)
	}
	if *stream {
		mix = load.Mix{Stream: 1}
	}
	urls := strings.Split(*url, ",")
	rep, err := load.Run(context.Background(), load.Config{
		BaseURLs:     urls,
		Sessions:     *sessions,
		Concurrency:  *concurrency,
		Duration:     *duration,
		Mix:          mix,
		BatchSize:    *batchSize,
		StreamFrames: *streamFrames,
		StreamTTL:    *streamTTL,
		Workers:      *workers,
		RunTimeout:   *runTimeout,
		Seed:         *seed,
	})
	if err != nil {
		fail("load run failed: %v", err)
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fail("writing report: %v", err)
		}
	} else {
		os.Stdout.Write(enc)
	}

	fmt.Fprintf(os.Stderr, "parload: %d requests, %.1f mutations/sec, %d 5xx, %d 429, %d transport errors, %d redirects, %d retries\n",
		rep.Requests, rep.MutationsPerSec, rep.Errors5xx, rep.Rejected429, rep.TransportErrors, rep.Redirects, rep.Retries)
	if len(rep.Stages) > 0 {
		stages := make([]string, 0, len(rep.Stages))
		for name := range rep.Stages {
			stages = append(stages, name)
		}
		sort.Strings(stages)
		for _, name := range stages {
			st := rep.Stages[name]
			fmt.Fprintf(os.Stderr, "parload: stage %-8s p50=%.3fms p95=%.3fms p99=%.3fms max=%.3fms (%d samples)\n",
				name, st.P50MS, st.P95MS, st.P99MS, st.MaxMS, st.Count)
		}
	}

	if *max5xx >= 0 && rep.Errors5xx > *max5xx {
		fail("self-check: %d 5xx responses (limit %d)", rep.Errors5xx, *max5xx)
	}
	if *max429 >= 0 && rep.Rejected429 > *max429 {
		fail("self-check: %d 429 rejections (limit %d)", rep.Rejected429, *max429)
	}
	if *maxTransport >= 0 && rep.TransportErrors > *maxTransport {
		fail("self-check: %d transport errors (limit %d)", rep.TransportErrors, *maxTransport)
	}
	if *minMutPerSec > 0 && rep.MutationsPerSec < *minMutPerSec {
		fail("self-check: %.1f mutations/sec below the %.1f floor", rep.MutationsPerSec, *minMutPerSec)
	}
}

func parseMix(spec string) (load.Mix, error) {
	var m load.Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("want kind=weight, got %q", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad weight %q", val)
		}
		switch kind {
		case "assert":
			m.Assert = w
		case "batch":
			m.Batch = w
		case "run":
			m.Run = w
		case "snapshot":
			m.Snapshot = w
		case "stream":
			m.Stream = w
		default:
			return m, fmt.Errorf("unknown op kind %q", kind)
		}
	}
	return m, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "parload: "+format+"\n", args...)
	os.Exit(1)
}
