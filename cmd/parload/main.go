// Command parload generates mixed traffic against a running paruleld and
// reports throughput and latency quantiles as JSON.
//
//	parload -url http://localhost:8467 -d 10s -c 8
//	parload -mix assert=4,batch=2,run=1,snapshot=1 -batch 16
//	parload -min-mutations-per-sec 100 -max-5xx 0    # CI smoke gate
//
// The self-check flags make the process exit nonzero when the run violates
// the given bounds, so CI can gate on a load run without parsing JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"parulel/internal/load"
)

func main() {
	url := flag.String("url", "http://localhost:8467", "base URL of the paruleld instance")
	sessions := flag.Int("sessions", 4, "sessions to create and spread traffic over")
	concurrency := flag.Int("c", 8, "concurrent client goroutines")
	duration := flag.Duration("d", 10*time.Second, "how long to generate load")
	mixSpec := flag.String("mix", "assert=4,batch=2,run=1,snapshot=1", "op mix weights, kind=weight comma-separated")
	batchSize := flag.Int("batch", 16, "facts per batch request")
	workers := flag.Int("workers", 0, "engine workers per session (0 = server default)")
	runTimeout := flag.Duration("run-timeout", 10*time.Second, "deadline sent with run ops")
	seed := flag.Int64("seed", 1, "RNG seed for the op mix")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	max5xx := flag.Int("max-5xx", -1, "self-check: fail when more than this many 5xx responses (-1 = off)")
	minMutPerSec := flag.Float64("min-mutations-per-sec", 0, "self-check: fail when mutation throughput is below this")
	flag.Parse()

	mix, err := parseMix(*mixSpec)
	if err != nil {
		fail("bad -mix: %v", err)
	}
	rep, err := load.Run(context.Background(), load.Config{
		BaseURL:     *url,
		Sessions:    *sessions,
		Concurrency: *concurrency,
		Duration:    *duration,
		Mix:         mix,
		BatchSize:   *batchSize,
		Workers:     *workers,
		RunTimeout:  *runTimeout,
		Seed:        *seed,
	})
	if err != nil {
		fail("load run failed: %v", err)
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fail("writing report: %v", err)
		}
	} else {
		os.Stdout.Write(enc)
	}

	if *max5xx >= 0 && rep.Errors5xx > *max5xx {
		fail("self-check: %d 5xx responses (limit %d)", rep.Errors5xx, *max5xx)
	}
	if *minMutPerSec > 0 && rep.MutationsPerSec < *minMutPerSec {
		fail("self-check: %.1f mutations/sec below the %.1f floor", rep.MutationsPerSec, *minMutPerSec)
	}
}

func parseMix(spec string) (load.Mix, error) {
	var m load.Mix
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("want kind=weight, got %q", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad weight %q", val)
		}
		switch kind {
		case "assert":
			m.Assert = w
		case "batch":
			m.Batch = w
		case "run":
			m.Run = w
		case "snapshot":
			m.Snapshot = w
		default:
			return m, fmt.Errorf("unknown op kind %q", kind)
		}
	}
	return m, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "parload: "+format+"\n", args...)
	os.Exit(1)
}
