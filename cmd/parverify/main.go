// Command parverify audits paruleld durability state offline — no
// running server required.
//
//	parverify -data-dir /var/parulel            audit every session
//	parverify -data-dir /var/parulel -session s1
//	parverify -data-dir /var/parulel -strict    crash debris fails too
//	parverify -proof p.json                     check a saved inclusion proof
//	parverify -proof p.json -root <hex>         …against a root recorded out of band
//
// Data-dir mode cross-checks each session's WAL frames against its
// Merkle ledger and the roots committed (and chained) through its
// checkpoint headers; see docs/SERVER.md "Audit & proofs" for what each
// finding means. Proof mode verifies a proof JSON saved from
// GET /sessions/{id}/proof — self-contained, or pinned to a trusted
// root with -root.
//
// Exit status: 0 everything verified, 1 a verification failed, 2 usage
// or I/O trouble.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parulel/internal/audit"
	"parulel/internal/wal"
)

func main() {
	dataDir := flag.String("data-dir", "", "paruleld data directory (or its sessions/ subdirectory) to audit")
	session := flag.String("session", "", "audit only this session id")
	strict := flag.Bool("strict", false, "treat crash-consistent debris (torn tails, unflushed ledger entries) as failures")
	proofPath := flag.String("proof", "", "verify a saved inclusion-proof JSON instead of a data dir")
	root := flag.String("root", "", "with -proof: the trusted root the proof must commit to (hex)")
	verbose := flag.Bool("v", false, "print per-session detail even when everything verifies")
	flag.Parse()

	switch {
	case *proofPath != "" && *dataDir != "":
		fmt.Fprintln(os.Stderr, "parverify: -proof and -data-dir are mutually exclusive")
		os.Exit(2)
	case *proofPath != "":
		os.Exit(verifyProof(*proofPath, *root))
	case *dataDir != "":
		os.Exit(verifyDataDir(*dataDir, *session, *strict, *verbose))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func verifyProof(path, trustedRoot string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parverify: %v\n", err)
		return 2
	}
	var p wal.Proof
	if err := json.Unmarshal(raw, &p); err != nil {
		fmt.Fprintf(os.Stderr, "parverify: %s is not a proof document: %v\n", path, err)
		return 2
	}
	if trustedRoot != "" && p.Root != trustedRoot {
		fmt.Printf("FAIL: proof commits to root %s, trusted root is %s\n", p.Root, trustedRoot)
		return 1
	}
	if err := wal.VerifyProof(&p); err != nil {
		fmt.Printf("FAIL: %v\n", err)
		return 1
	}
	fmt.Printf("OK: seq %d is leaf %d of %d under root %s\n", p.Seq, p.Index, p.Count, p.Root)
	return 0
}

func verifyDataDir(dir, session string, strict, verbose bool) int {
	var (
		reports []*audit.Report
		err     error
	)
	if session != "" {
		sdir := filepath.Join(dir, "sessions", session)
		if _, serr := os.Stat(sdir); serr != nil {
			sdir = filepath.Join(dir, session)
		}
		if _, serr := os.Stat(sdir); serr != nil {
			fmt.Fprintf(os.Stderr, "parverify: %v\n", serr)
			return 2
		}
		reports = []*audit.Report{audit.VerifySessionDir(sdir)}
	} else {
		reports, err = audit.VerifyDataDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parverify: %v\n", err)
			return 2
		}
	}

	failed := 0
	for _, r := range reports {
		bad := r.Failed(strict)
		if bad {
			failed++
		}
		if bad || verbose || len(r.Findings) > 0 {
			status := "OK"
			if bad {
				status = "FAIL"
			}
			fmt.Printf("%s: session %s (frames=%d ledger=%d committed=%d root=%s)\n",
				status, r.Session, r.Frames, r.LedgerCount, r.Committed, shortHex(r.Root))
			for _, f := range r.Findings {
				fmt.Printf("  %-5s %s: %s\n", f.Level, f.Code, f.Detail)
			}
		}
	}
	if failed > 0 {
		fmt.Printf("parverify: %d of %d sessions FAILED\n", failed, len(reports))
		return 1
	}
	fmt.Printf("parverify: %d sessions verified\n", len(reports))
	return 0
}

func shortHex(s string) string {
	if len(s) > 12 {
		return s[:12] + "…"
	}
	if s == "" {
		return "-"
	}
	return s
}
