// Command parbench regenerates the reconstructed evaluation: every table
// and figure indexed in DESIGN.md §3 (E1–E6). See EXPERIMENTS.md for the
// recorded outputs and the paper-shape commentary.
//
//	parbench               run all experiments at full size
//	parbench -exp e2,e5    run selected experiments
//	parbench -quick        small sizes (seconds, for smoke tests)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parulel/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (e1..e6) or 'all'")
	quick := flag.Bool("quick", false, "run reduced problem sizes")
	flag.Parse()

	ids := bench.Order
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for i, id := range ids {
		run, ok := bench.Experiments[strings.TrimSpace(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "parbench: unknown experiment %q (want e1..e6)\n", id)
			os.Exit(2)
		}
		if i > 0 {
			fmt.Println()
		}
		if err := run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "parbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
