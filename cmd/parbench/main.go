// Command parbench regenerates the reconstructed evaluation: every table
// and figure indexed in DESIGN.md §3 (E1–E11, E13, E14). See
// EXPERIMENTS.md for the recorded outputs and the paper-shape commentary.
//
//	parbench                  run all experiments at full size
//	parbench -exp e2,e5       run selected experiments
//	parbench -quick           small sizes (seconds, for smoke tests)
//	parbench -json            machine-readable suite run → BENCH_results.json
//	parbench -json -out f     …written to f instead ("-" for stdout)
//	parbench -eval interp     run the suite on the tree-walking backend
//	parbench -evalbench       E13 eval-mode ablation (bytecode VM vs interp)
//	parbench -evalbench -json …merged into the -out document under "eval"
//	parbench -serve           single-op vs batched ingest against an in-process server
//	parbench -serve -json     …merged into the -out document under "serve"
//	parbench -stream          E14 continuous temporal ingest (TTL eviction vs WM growth)
//	parbench -stream -json    …merged into the -out document under "stream"
//	parbench -cluster         1-node vs 3-node aggregate ingest (in-process cluster)
//	parbench -cluster -json   …merged into the -out document under "cluster"
//	parbench -durability      WAL fsync policy cost + group-commit vs always under concurrency
//	parbench -durability -json …merged into the -out document under "durability"
//	parbench -ruleprofile     per-rule match-time attribution tables
//	parbench -cpuprofile f    write a pprof CPU profile of the run to f
//	parbench -memprofile f    write a pprof heap profile at exit to f
//
// See docs/PERF.md for the profiling workflow.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"parulel"
	"parulel/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (e1..e11, e13, e14) or 'all'")
	quick := flag.Bool("quick", false, "run reduced problem sizes")
	evalFlag := flag.String("eval", "bytecode", "expression backend for the -json suite run: bytecode, interp")
	evalBench := flag.Bool("evalbench", false, "run the E13 eval-mode ablation (bytecode VM vs tree walker) instead of the experiment tables")
	jsonOut := flag.Bool("json", false, "run the workload suite and write a machine-readable BENCH_*.json document instead of the experiment tables")
	serve := flag.Bool("serve", false, "benchmark server-level ingest (single-op vs batched) against an in-process paruleld")
	streamBench := flag.Bool("stream", false, "benchmark continuous temporal ingest (E14) against an in-process paruleld")
	clusterBench := flag.Bool("cluster", false, "benchmark 1-node vs 3-node aggregate ingest against an in-process cluster")
	durability := flag.Bool("durability", false, "run the durability benchmark (WAL fsync policy comparison) instead of the experiment tables")
	ruleProfile := flag.Bool("ruleprofile", false, "print per-rule match attribution tables instead of the experiment tables")
	top := flag.Int("top", 10, "rules shown per workload under -ruleprofile (the rest fold into one row)")
	out := flag.String("out", "BENCH_results.json", "output path for -json (\"-\" for stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
			}
		}()
	}

	evalMode, err := parulel.ParseEvalMode(*evalFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
		os.Exit(2)
	}

	if *evalBench {
		doc, err := bench.RunEvalAblation(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbench: evalbench: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := bench.MergeEvalJSON(*out, doc); err != nil {
				fmt.Fprintf(os.Stderr, "parbench: evalbench: %v\n", err)
				os.Exit(1)
			}
			if *out != "-" && len(doc.Results) > 0 {
				fmt.Fprintf(os.Stderr, "parbench: merged eval results into %s (eval speedup %.2fx on %s, %d CPU)\n",
					*out, doc.Results[0].EvalSpeedup, doc.Results[0].Workload, doc.NumCPU)
			}
		} else {
			bench.WriteEvalTable(os.Stdout, doc)
		}
		return
	}

	if *serve {
		doc, err := bench.RunServe(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbench: serve: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := bench.MergeServeJSON(*out, doc); err != nil {
				fmt.Fprintf(os.Stderr, "parbench: serve: %v\n", err)
				os.Exit(1)
			}
			if *out != "-" {
				fmt.Fprintf(os.Stderr, "parbench: merged serve results into %s (speedup %.2fx)\n", *out, doc.BatchSpeedup)
			}
		} else {
			bench.WriteServeTable(os.Stdout, doc)
		}
		return
	}

	if *streamBench {
		doc, err := bench.RunStream(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbench: stream: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := bench.MergeStreamJSON(*out, doc); err != nil {
				fmt.Fprintf(os.Stderr, "parbench: stream: %v\n", err)
				os.Exit(1)
			}
			if *out != "-" {
				fmt.Fprintf(os.Stderr, "parbench: merged stream results into %s (%d facts, peak WM %d)\n",
					*out, doc.FactsStreamed, doc.PeakWM)
			}
		} else {
			bench.WriteStreamTable(os.Stdout, doc)
		}
		return
	}

	if *clusterBench {
		doc, err := bench.RunCluster(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbench: cluster: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := bench.MergeClusterJSON(*out, doc); err != nil {
				fmt.Fprintf(os.Stderr, "parbench: cluster: %v\n", err)
				os.Exit(1)
			}
			if *out != "-" {
				fmt.Fprintf(os.Stderr, "parbench: merged cluster results into %s (speedup %.2fx on %d CPU)\n", *out, doc.Speedup, doc.NumCPU)
			}
		} else {
			bench.WriteClusterTable(os.Stdout, doc)
		}
		return
	}

	if *durability {
		doc, err := bench.RunDurability(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbench: durability: %v\n", err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := bench.MergeDurabilityJSON(*out, doc); err != nil {
				fmt.Fprintf(os.Stderr, "parbench: durability: %v\n", err)
				os.Exit(1)
			}
			if *out != "-" {
				fmt.Fprintf(os.Stderr, "parbench: merged durability results into %s (group-commit %.2fx vs always at c=%d)\n",
					*out, doc.GroupSpeedup, doc.GroupSpeedupConcurrency)
			}
		} else if err := bench.WriteDurabilityTable(os.Stdout, doc); err != nil {
			fmt.Fprintf(os.Stderr, "parbench: durability: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *ruleProfile {
		if err := bench.RuleProfiles(os.Stdout, *quick, *top); err != nil {
			fmt.Fprintf(os.Stderr, "parbench: ruleprofile: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut {
		doc, err := bench.RunJSON(*quick, evalMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
			os.Exit(1)
		}
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := bench.WriteJSON(w, doc); err != nil {
			fmt.Fprintf(os.Stderr, "parbench: %v\n", err)
			os.Exit(1)
		}
		if *out != "-" {
			fmt.Fprintf(os.Stderr, "parbench: wrote %d results to %s\n", len(doc.Results), *out)
		}
		return
	}

	ids := bench.Order
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for i, id := range ids {
		run, ok := bench.Experiments[strings.TrimSpace(id)]
		if !ok {
			fmt.Fprintf(os.Stderr, "parbench: unknown experiment %q (want e1..e11, e13 or e14)\n", id)
			os.Exit(2)
		}
		if i > 0 {
			fmt.Println()
		}
		if err := run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "parbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
