// Command paruleld serves PARULEL programs over HTTP/JSON: long-lived
// rule sessions with fact assertion, deadline-bounded runs to quiescence,
// working-memory queries, snapshot export/import, and engine metrics.
//
//	paruleld                      serve on :8467 with defaults
//	paruleld -addr :9000          pick the listen address
//	paruleld -max-sessions 256    widen the session pool
//	paruleld -cluster-node a -cluster-peers a=:7467=http://h1:8467,b=:7468=http://h2:8467 -data-dir /var/parulel
//	                              join a sharded cluster (see docs/SERVER.md "Cluster")
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains in-flight
// runs (bounded by -drain-timeout), and exits. See docs/SERVER.md for the
// API reference.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parulel"
	"parulel/internal/cluster"
	"parulel/internal/server"
	"parulel/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8467", "listen address")
	maxSessions := flag.Int("max-sessions", 64, "session pool size (LRU eviction beyond it)")
	idleTTL := flag.Duration("idle-ttl", 30*time.Minute, "evict sessions idle for this long")
	maxRuns := flag.Int("max-runs", 8, "engines running concurrently server-wide")
	maxInflight := flag.Int("max-inflight", 0, "admitted runs (executing+queued) before 429; 0 = 8×max-runs, negative = unlimited")
	queueDepth := flag.Int("queue-depth", 32, "per-session mutation queue depth before 429; negative = unlimited")
	runSlice := flag.Int("run-slice", 0, "engine cycles per run-queue slot before requeueing (0 = run to quiescence in one slot)")
	runTimeout := flag.Duration("run-timeout", 30*time.Second, "default per-run deadline")
	maxRunTimeout := flag.Duration("max-run-timeout", 5*time.Minute, "cap on client-requested run deadlines")
	workers := flag.Int("workers", 4, "default match/fire workers per session engine")
	evalFlag := flag.String("eval", "bytecode", "expression backend for session engines: bytecode, interp")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight runs")
	dataDir := flag.String("data-dir", "", "durability root: write-ahead logs + checkpoints under <dir>/sessions (empty = sessions are memory-only)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: always, group, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "flush period under -fsync interval")
	fsyncWait := flag.Int("fsync-wait-ms", 0, "under -fsync group, park this long for more appends to join a cohort before flushing (0 = flush immediately)")
	merkle := flag.Bool("merkle", true, "keep a tamper-evident merkle ledger per session (merkle.log, chained checkpoint roots, /proof endpoint)")
	checkpointEvery := flag.Int("checkpoint-every", 256, "checkpoint a session after this many WAL records")
	traceCycles := flag.Int("trace-cycles", 512, "per-session cycle-trace ring size served at /sessions/{id}/trace")
	spanCapacity := flag.Int("span-capacity", 0, "per-node span ring size served at /debug/spans (0 = default 4096)")
	slowRequest := flag.Duration("slow-request", time.Second, "capture requests at least this slow into the flight recorder (negative = disabled)")
	flightSize := flag.Int("flight-recorder", 0, "slow-request flight-recorder ring size (0 = default 64)")
	clusterNode := flag.String("cluster-node", "", "this node's name in -cluster-peers; empty = single-node mode")
	clusterPeers := flag.String("cluster-peers", "", "full static member list: name=peerAddr=publicURL,... (must include this node)")
	peerAddr := flag.String("peer-addr", "", "peer-protocol listen address (empty = this node's address from -cluster-peers)")
	clusterRepl := flag.String("cluster-repl", "sync", "WAL replication to the follower node: sync, async or off")
	clusterRedirect := flag.Bool("cluster-redirect", false, "answer requests for remote sessions with 307 redirects instead of proxying")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	quiet := flag.Bool("quiet", false, "suppress per-event logging")
	flag.Parse()

	logDst := io.Writer(os.Stderr)
	if *quiet {
		logDst = io.Discard
	}
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(logDst, nil)
	} else {
		handler = slog.NewTextHandler(logDst, nil)
	}
	logger := slog.New(handler)
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}
	policy, err := wal.ParsePolicy(*fsync)
	if err != nil {
		fatal("bad -fsync policy", err)
	}
	evalMode, err := parulel.ParseEvalMode(*evalFlag)
	if err != nil {
		fatal("bad -eval mode", err)
	}
	var clusterCfg *cluster.Config
	if *clusterNode != "" || *clusterPeers != "" {
		if *clusterNode == "" || *clusterPeers == "" {
			fatal("cluster mode", errors.New("-cluster-node and -cluster-peers must be set together"))
		}
		if *dataDir == "" {
			fatal("cluster mode", errors.New("-data-dir is required: replication and migration stream WAL frames and checkpoints"))
		}
		members, err := cluster.ParseMembers(*clusterPeers)
		if err != nil {
			fatal("bad -cluster-peers", err)
		}
		clusterCfg = &cluster.Config{
			Node:        *clusterNode,
			Members:     members,
			PeerAddr:    *peerAddr,
			Replication: *clusterRepl,
			Redirect:    *clusterRedirect,
		}
	}
	cfg := server.Config{
		MaxSessions:          *maxSessions,
		IdleTTL:              *idleTTL,
		MaxConcurrentRuns:    *maxRuns,
		MaxInflightRuns:      *maxInflight,
		MutationQueueDepth:   *queueDepth,
		RunSlice:             *runSlice,
		DefaultRunTimeout:    *runTimeout,
		MaxRunTimeout:        *maxRunTimeout,
		DefaultWorkers:       *workers,
		EvalMode:             evalMode,
		DataDir:              *dataDir,
		Fsync:                policy,
		FsyncInterval:        *fsyncInterval,
		FsyncWait:            time.Duration(*fsyncWait) * time.Millisecond,
		DisableMerkle:        !*merkle,
		CheckpointEvery:      *checkpointEvery,
		TraceCycles:          *traceCycles,
		SpanCapacity:         *spanCapacity,
		SlowRequestThreshold: *slowRequest,
		FlightRecorderSize:   *flightSize,
		Cluster:              clusterCfg,
		Logger:               logger,
	}
	srv, err := server.New(cfg)
	if err != nil {
		fatal("starting server", err)
	}
	if clusterCfg != nil {
		logger.Info("cluster mode", "node", clusterCfg.Node, "members", len(clusterCfg.Members), "replication", *clusterRepl)
	}

	// pprof lives on its own listener so profiling is never exposed on the
	// service port by accident.
	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logger.Info("pprof listening", "addr", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGQUIT dumps the slow-request flight recorder (trace ids, stage
	// spans) to stderr without stopping the daemon — the classic "what was
	// slow just now" black-box pull.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	go func() {
		for range quitCh {
			recs := srv.FlightRecords()
			logger.Info("flight recorder dump", "records", len(recs))
			enc := json.NewEncoder(os.Stderr)
			enc.SetIndent("", "  ")
			_ = enc.Encode(recs)
		}
	}()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "sessions", *maxSessions, "concurrent_runs", *maxRuns)

	select {
	case err := <-errCh:
		fatal("listen", err)
	case <-ctx.Done():
	}

	logger.Info("signal received; draining", "timeout", drainTimeout.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Shutdown stops the listener and waits for in-flight HTTP requests;
	// srv.Close additionally waits for engine runs and stops the janitor.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Error("http shutdown", "err", err)
	}
	if err := srv.Close(drainCtx); err != nil {
		logger.Error("drain", "err", err)
		os.Exit(1)
	}
	logger.Info("drained cleanly")
}
