// Command paruleld serves PARULEL programs over HTTP/JSON: long-lived
// rule sessions with fact assertion, deadline-bounded runs to quiescence,
// working-memory queries, snapshot export/import, and engine metrics.
//
//	paruleld                      serve on :8467 with defaults
//	paruleld -addr :9000          pick the listen address
//	paruleld -max-sessions 256    widen the session pool
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains in-flight
// runs (bounded by -drain-timeout), and exits. See docs/SERVER.md for the
// API reference.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parulel/internal/server"
	"parulel/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8467", "listen address")
	maxSessions := flag.Int("max-sessions", 64, "session pool size (LRU eviction beyond it)")
	idleTTL := flag.Duration("idle-ttl", 30*time.Minute, "evict sessions idle for this long")
	maxRuns := flag.Int("max-runs", 8, "engines running concurrently server-wide")
	runTimeout := flag.Duration("run-timeout", 30*time.Second, "default per-run deadline")
	maxRunTimeout := flag.Duration("max-run-timeout", 5*time.Minute, "cap on client-requested run deadlines")
	workers := flag.Int("workers", 4, "default match/fire workers per session engine")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight runs")
	dataDir := flag.String("data-dir", "", "durability root: write-ahead logs + checkpoints under <dir>/sessions (empty = sessions are memory-only)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: always, interval or never")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "flush period under -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 256, "checkpoint a session after this many WAL records")
	quiet := flag.Bool("quiet", false, "suppress per-event logging")
	flag.Parse()

	logger := log.New(os.Stderr, "paruleld: ", log.LstdFlags)
	policy, err := wal.ParsePolicy(*fsync)
	if err != nil {
		logger.Fatal(err)
	}
	cfg := server.Config{
		MaxSessions:       *maxSessions,
		IdleTTL:           *idleTTL,
		MaxConcurrentRuns: *maxRuns,
		DefaultRunTimeout: *runTimeout,
		MaxRunTimeout:     *maxRunTimeout,
		DefaultWorkers:    *workers,
		DataDir:           *dataDir,
		Fsync:             policy,
		FsyncInterval:     *fsyncInterval,
		CheckpointEvery:   *checkpointEvery,
	}
	if !*quiet {
		cfg.Log = logger
	}
	srv, err := server.New(cfg)
	if err != nil {
		logger.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Printf("serving on %s (sessions=%d, concurrent runs=%d)", *addr, *maxSessions, *maxRuns)

	select {
	case err := <-errCh:
		logger.Fatalf("listen: %v", err)
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (up to %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Shutdown stops the listener and waits for in-flight HTTP requests;
	// srv.Close additionally waits for engine runs and stops the janitor.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(drainCtx); err != nil {
		logger.Printf("drain: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained cleanly")
}
