module parulel

go 1.22
