// Quickstart: load the embedded greeting program, add people, run the
// PARULEL engine, and inspect the results — the smallest end-to-end use
// of the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"parulel"
)

func main() {
	log.SetFlags(0)
	prog, err := parulel.LoadBuiltin(parulel.Quickstart)
	if err != nil {
		log.Fatal(err)
	}

	eng := parulel.NewEngine(prog, parulel.Config{
		Workers:   4,
		Output:    os.Stdout, // (write …) actions print here
		MaxCycles: 1000,
	})

	// Facts can come from (wm …) blocks in the source or be inserted
	// programmatically:
	people := []struct {
		name string
		age  int64
	}{
		{"ada", 36}, {"grace", 45}, {"alan", 41}, {"kid", 9}, {"teen", 17},
	}
	for _, p := range people {
		if _, err := eng.Insert("person", map[string]parulel.Value{
			"name": parulel.Sym(p.name),
			"age":  parulel.Int(p.age),
		}); err != nil {
			log.Fatal(err)
		}
	}

	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}

	tally := eng.Facts("tally")
	fmt.Printf("\ngreeted %s adults in %d cycles (%d rule firings, %d redactions)\n",
		tally[0].Fields[0], res.Cycles, res.Firings, res.Redactions)
	fmt.Printf("phase breakdown: match %.0f%%  redact %.0f%%  fire %.0f%%  apply %.0f%%\n",
		res.MatchPct, res.RedactPct, res.FirePct, res.ApplyPct)
}
