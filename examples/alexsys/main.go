// ALEXSYS-style mortgage-pool allocation: the conflict-heavy workload
// PARULEL's redaction meta-rules were designed for. The example runs the
// allocation twice — with meta-rules (conflict-free parallel awards) and
// without (write conflicts and over-allocation) — and prints both
// outcomes.
package main

import (
	"flag"
	"fmt"
	"log"

	"parulel"
	"parulel/internal/workload"
)

func main() {
	log.SetFlags(0)
	pools := flag.Int("pools", 200, "number of mortgage pools")
	orders := flag.Int("orders", 150, "number of buy orders")
	workers := flag.Int("workers", 4, "parallel workers")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	prog, err := parulel.LoadBuiltin(parulel.Alexsys)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("allocating %d pools to %d orders (%d workers)\n\n", *pools, *orders, *workers)

	run := func(label string, p *parulel.Program) {
		eng := parulel.NewEngine(p, parulel.Config{Workers: *workers, MaxCycles: 10000})
		if err := workload.Alexsys(eng, *pools, *orders, *seed); err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		sold, overAllocated := 0, 0
		orderPools := map[int64]int{}
		for _, w := range eng.Facts("pool") {
			if w.Fields[2] == parulel.Sym("sold") {
				sold++
				orderPools[w.Fields[3].I]++
			}
		}
		for _, n := range orderPools {
			if n > 1 {
				overAllocated++
			}
		}
		fmt.Printf("%-16s cycles=%-4d firings=%-5d redactions=%-5d conflicts=%-4d sold=%-4d over-allocated-orders=%d\n",
			label, res.Cycles, res.Firings, res.Redactions, res.WriteConflicts, sold, overAllocated)
	}

	run("with meta-rules", prog)
	noMeta, err := prog.WithoutMetaRules()
	if err != nil {
		log.Fatal(err)
	}
	run("without", noMeta)

	fmt.Println("\nwith meta-rules every award is conflict-free; without them parallel")
	fmt.Println("firing collides on shared pools/orders (the engine resolves collisions")
	fmt.Println("deterministically but counts them — PARULEL's case for programmable")
	fmt.Println("conflict resolution).")
}
