// Copy-and-constrain advisor workflow: run a program once to observe
// which rule dominates the conflict set, ask the advisor what to split,
// apply the split, and compare the match-work distribution before and
// after — the PARULEL tuning loop for programs whose parallelism is
// capped by a single hot rule.
package main

import (
	"flag"
	"fmt"
	"log"

	"parulel"
	"parulel/internal/workload"
)

const hotProgram = `
(literalize task id region cost)
(literalize res  id region cap)
(literalize hit  task res)
(rule assign
  (task ^id <t> ^region <r> ^cost <c>)
  (res  ^id <s> ^region <r> ^cap <k>)
  (test (>= <k> <c>))
-->
  (make hit ^task <t> ^res <s>))
(rule audit
  (hit ^task <t> ^res <s>)
-->
  (make task ^id <t>))
`

func main() {
	log.SetFlags(0)
	regions := flag.Int("regions", 16, "number of regions")
	per := flag.Int("per-region", 12, "tasks and resources per region")
	workers := flag.Int("workers", 8, "parallel workers")
	split := flag.Int("split", 8, "copy-and-constrain factor")
	flag.Parse()

	prog, err := parulel.Parse(hotProgram)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Observe: run once and collect per-rule activity.
	probe := parulel.NewEngine(prog, parulel.Config{Workers: *workers, MaxCycles: 100})
	if err := workload.HotRuleFacts(probe, *regions, *per, 1); err != nil {
		log.Fatal(err)
	}
	if _, err := probe.Run(); err != nil {
		log.Fatal(err)
	}
	activity := probe.RuleActivity()
	fmt.Println("observed rule activity (instantiations entering the conflict set):")
	for _, r := range prog.Rules() {
		fmt.Printf("  %-8s %d\n", r, activity[r])
	}

	// 2. Advise.
	adv, err := prog.Advise(activity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadvice: split rule %q on variable <%s> (activity %d)\n\n", adv.Rule, adv.Variable, adv.Activity)

	// 3. Apply and compare.
	splitProg, err := prog.SplitRule(adv.Rule, adv.Variable, *split)
	if err != nil {
		log.Fatal(err)
	}
	for label, p := range map[string]*parulel.Program{"original": prog, "split": splitProg} {
		eng := parulel.NewEngine(p, parulel.Config{Workers: *workers, MaxCycles: 100})
		if err := workload.HotRuleFacts(eng, *regions, *per, 1); err != nil {
			log.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s rules=%-3d hits=%-6d\n", label, len(p.Rules()), eng.FactCount("hit"))
	}
	fmt.Printf("\nthe split program distributes rule %q over %d workers; run\n", adv.Rule, *workers)
	fmt.Println("`go run ./cmd/parbench -exp e3` for the measured scaling table.")
}
