// Conway's Game of Life written as PARULEL rules: every cell's next
// state is one rule instantiation, a whole generation fires in two
// engine cycles, and the engine's work tracks the number of *changing*
// cells, not the grid size. Run with -show to print each board.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"parulel"
	"parulel/internal/workload"
)

func board(eng *parulel.Engine, w, h int) string {
	live := workload.LifeBoard(eng.Facts("cell"))
	var b strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if live[[2]int{x, y}] {
				b.WriteString("# ")
			} else {
				b.WriteString(". ")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func main() {
	log.SetFlags(0)
	w := flag.Int("w", 12, "grid width")
	h := flag.Int("h", 10, "grid height")
	gens := flag.Int("gens", 8, "generations to run")
	workers := flag.Int("workers", 4, "parallel workers")
	show := flag.Bool("show", true, "print each generation")
	pattern := flag.String("pattern", "glider", "glider, blinker or random")
	seed := flag.Int64("seed", 1, "seed for -pattern random")
	flag.Parse()

	var start [][2]int
	switch *pattern {
	case "glider":
		start = workload.LifeGlider(1, 1)
	case "blinker":
		start = workload.LifeBlinker(*w/2, *h/2)
	case "random":
		start = workload.LifeRandom(*w, *h, 0.3, *seed)
	default:
		log.Fatalf("unknown pattern %q", *pattern)
	}

	prog, err := parulel.LoadBuiltin(parulel.Life)
	if err != nil {
		log.Fatal(err)
	}

	// Step one generation at a time so each board can be printed: run a
	// fresh engine to generation g (the engine is deterministic, so this
	// is equivalent to snapshotting one long run).
	for g := 0; g <= *gens; g++ {
		eng := parulel.NewEngine(prog, parulel.Config{Workers: *workers, MaxCycles: 10 * (*gens + 2)})
		if err := workload.LifeGrid(eng, *w, *h, start, g); err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		if *show {
			fmt.Printf("generation %d  (cycles=%d firings=%d)\n%s\n", g, res.Cycles, res.Firings, board(eng, *w, *h))
		} else if g == *gens {
			fmt.Printf("after %d generations: cycles=%d firings=%d, %d live cells\n",
				g, res.Cycles, res.Firings, len(workload.LifeBoard(eng.Facts("cell"))))
		}
	}
}
