// Miss Manners: the join-heavy seating benchmark. Candidate extensions
// (opposite sex, shared hobby, unseated) form a large conflict set every
// cycle; a redaction meta-rule keeps exactly one — PARULEL's declarative
// replacement for the OPS5 original's MEA-driven search control.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"parulel"
	"parulel/internal/workload"
)

func main() {
	log.SetFlags(0)
	guests := flag.Int("guests", 24, "number of guests (even)")
	hobbies := flag.Int("hobbies", 3, "extra hobbies per guest")
	hobbyCount := flag.Int("hobby-count", 8, "size of the hobby universe")
	workers := flag.Int("workers", 4, "parallel workers")
	sequential := flag.Bool("sequential-redaction", false, "use sequential redaction semantics (E8)")
	seed := flag.Int64("seed", 1, "party seed")
	flag.Parse()

	prog, err := parulel.LoadBuiltin(parulel.Manners)
	if err != nil {
		log.Fatal(err)
	}
	eng := parulel.NewEngine(prog, parulel.Config{
		Workers:             *workers,
		MaxCycles:           100 * (*guests + 2),
		SequentialRedaction: *sequential,
	})
	if err := workload.Manners(eng, *guests, *hobbies, *hobbyCount, *seed); err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("seated %d guests in %d cycles (%d firings, %d candidate extensions redacted) in %v\n\n",
		*guests, res.Cycles, res.Firings, res.Redactions, elapsed.Round(time.Millisecond))
	fmt.Println("seating order:")
	names := make(map[int64]string)
	for _, s := range eng.Facts("seating") {
		names[s.Fields[0].I] = s.Fields[1].S
	}
	for pos := int64(1); pos <= int64(*guests); pos++ {
		fmt.Printf("  seat %2d: %s\n", pos, names[pos])
	}
	fmt.Printf("\nphases: match %.1f%%  redact %.1f%%  fire %.1f%%  apply %.1f%%\n",
		res.MatchPct, res.RedactPct, res.FirePct, res.ApplyPct)
	fmt.Println("seating is inherently serial (one guest per cycle); the cost that")
	fmt.Println("grows with the guest list is the candidate JOIN and its redaction —")
	fmt.Println("compare -sequential-redaction for the E8 semantics.")
}
