// Parallel transitive closure of a layered DAG — set-oriented firing at
// its clearest: PARULEL derives every one-step path extension in a single
// cycle, so the cycle count tracks the graph's depth while the sequential
// baseline's tracks the (much larger) number of derived paths.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"parulel"
	"parulel/internal/workload"
)

func main() {
	log.SetFlags(0)
	layers := flag.Int("layers", 8, "DAG layers")
	width := flag.Int("width", 6, "nodes per layer")
	fanout := flag.Int("fanout", 3, "arcs per node to the next layer")
	workers := flag.Int("workers", 4, "parallel workers (parulel engine)")
	seed := flag.Int64("seed", 1, "graph seed")
	flag.Parse()

	arcs := (*layers - 1) * *width * min(*fanout, *width)
	fmt.Printf("closing a %d×%d layered DAG (%d arcs, depth %d)\n\n",
		*layers, *width, arcs, *layers-1)

	var paths int
	for _, kind := range []parulel.EngineKind{parulel.Parulel, parulel.OPS5LEX} {
		prog, err := parulel.LoadBuiltin(parulel.Closure)
		if err != nil {
			log.Fatal(err)
		}
		eng := parulel.NewEngine(prog, parulel.Config{
			Engine:    kind,
			Workers:   *workers,
			MaxCycles: 0,
		})
		if err := workload.LayeredDAG(eng, *layers, *width, *fanout, *seed); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		n := eng.FactCount("path")
		if paths == 0 {
			paths = n
		} else if n != paths {
			log.Fatalf("engines disagree on closure size: %d vs %d", paths, n)
		}
		fmt.Printf("%-8s cycles=%-6d firings=%-7d paths=%-6d (%v)\n",
			kind, res.Cycles, res.Firings, n, elapsed.Round(time.Millisecond))
	}
	fmt.Printf("\nboth engines derive the same %d paths; PARULEL needs ~depth cycles,\n", paths)
	fmt.Println("the baseline needs one cycle per path.")
}
