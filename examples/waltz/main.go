// Waltz line labeling over generated block scenes, run under both the
// PARULEL engine and the OPS5 baseline. The point of the comparison: the
// parallel engine's cycle count is flat in the scene size (every cube's
// constraint propagation proceeds simultaneously) while the baseline needs
// one cycle per rule firing.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"parulel"
	"parulel/internal/workload"
)

func main() {
	log.SetFlags(0)
	cubes := flag.Int("cubes", 100, "number of cubes in the scene")
	workers := flag.Int("workers", 4, "parallel workers (parulel engine)")
	flag.Parse()

	fmt.Printf("labeling a %d-cube scene (%d junctions, %d edges)\n\n",
		*cubes, *cubes*7, *cubes*9)

	for _, kind := range []parulel.EngineKind{parulel.Parulel, parulel.OPS5LEX} {
		prog, err := parulel.LoadBuiltin(parulel.Waltz)
		if err != nil {
			log.Fatal(err)
		}
		eng := parulel.NewEngine(prog, parulel.Config{
			Engine:    kind,
			Workers:   *workers,
			MaxCycles: 100 + *cubes*40,
		})
		if err := workload.WaltzScene(eng, *cubes); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)

		labeled := eng.FactCount("label")
		done := eng.FactCount("jdone")
		ok := "OK"
		if labeled != *cubes*9 || done != *cubes*7 {
			ok = "INCOMPLETE"
		}
		fmt.Printf("%-8s cycles=%-6d firings=%-7d labels=%-6d junctions-done=%-6d %s  (%v)\n",
			kind, res.Cycles, res.Firings, labeled, done, ok, elapsed.Round(time.Millisecond))
	}
}
