// Combinational circuit evaluation as PARULEL rules: every gate whose
// inputs are driven fires in the same cycle, so evaluation takes one
// cycle per circuit level; contended nets (two drivers on one wire) are
// arbitrated by a redaction meta-rule. The run is checked against a
// plain-Go reference evaluator.
package main

import (
	"flag"
	"fmt"
	"log"
	"reflect"
	"time"

	"parulel"
	"parulel/internal/workload"
)

func main() {
	log.SetFlags(0)
	width := flag.Int("width", 16, "wires per level")
	depth := flag.Int("depth", 24, "circuit levels")
	workers := flag.Int("workers", 4, "parallel workers")
	contended := flag.Bool("contended", true, "generate contended nets (bus arbitration)")
	seed := flag.Int64("seed", 1, "netlist seed")
	flag.Parse()

	c := workload.GenCircuit(*width, *depth, *contended, *seed)
	fmt.Printf("evaluating %v (%d workers)\n\n", c, *workers)

	for _, kind := range []parulel.EngineKind{parulel.Parulel, parulel.OPS5LEX} {
		prog, err := parulel.LoadBuiltin(parulel.Circuit)
		if err != nil {
			log.Fatal(err)
		}
		eng := parulel.NewEngine(prog, parulel.Config{
			Engine:    kind,
			Workers:   *workers,
			MaxCycles: 100000,
		})
		if err := c.Insert(eng); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		got := workload.Wires(eng.Facts("wire"))
		status := "MATCHES reference"
		if kind == parulel.Parulel {
			if !reflect.DeepEqual(got, c.Reference()) {
				status = "DIVERGED from reference"
			}
		} else {
			// OPS5 ignores the arbitration meta-rule; on contended nets its
			// first-come winners may differ, which is the point.
			status = fmt.Sprintf("%d wires driven", len(got))
		}
		fmt.Printf("%-8s cycles=%-6d firings=%-6d redactions=%-5d %s (%v)\n",
			kind, res.Cycles, res.Firings, res.Redactions, status, elapsed.Round(time.Millisecond))
	}
	fmt.Printf("\ncycles track circuit depth (%d) under PARULEL, gate count (%d) under OPS5.\n",
		c.Depth, len(c.Gates))
}
